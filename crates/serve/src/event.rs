//! OS readiness notification for the serve engine: raw `epoll` and
//! `eventfd` bindings on Linux.
//!
//! The container builds offline, so there is no `libc`/`mio` dependency —
//! the handful of syscall wrappers the event loop needs are declared
//! directly against the C library that `std` already links. Everything
//! unsafe lives in this module, wrapped in two small RAII types:
//!
//! * [`Epoll`] — an `epoll` instance. Interest is registered per fd with a
//!   caller-chosen `u64` token; [`Epoll::wait`] blocks **in the kernel**
//!   (no busy-wait, no park interval) until an fd is ready or the timeout
//!   elapses. Connections register **edge-triggered** (`EPOLLET`), which
//!   pairs with the serve loop's drain-until-`WouldBlock` discipline;
//!   the shared listener registers `EPOLLEXCLUSIVE` so one readiness
//!   event wakes one worker instead of the whole pool (no thundering
//!   herd).
//! * [`WakeFd`] — a level-triggered `eventfd` registered in every worker's
//!   epoll set. [`WakeFd::wake`] makes it readable and *leaves* it
//!   readable, so a single stop signal wakes every worker no matter how
//!   many are blocked, immediately — this is what lets `epoll_wait` run
//!   with an infinite timeout and still honour shutdown in microseconds.
//!
//! On non-Linux targets this module is not compiled; the server falls back
//! to the portable poll loop (see `server.rs`).

#![allow(unsafe_code)]

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::RawFd;

// Constants from the Linux UAPI headers (stable kernel ABI).
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLEXCLUSIVE: u32 = 1 << 28;
const EPOLLET: u32 = 1 << 31;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// `struct epoll_event`, matching the C library's declaration (packed on
/// x86-64, where the kernel ABI differs from natural alignment).
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

const SOL_SOCKET: c_int = 1;
const SO_SNDBUF: c_int = 7;
const SO_RCVBUF: c_int = 8;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One readiness notification out of [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Data can be read (or a peer hangup/error is pending, which a read
    /// will surface).
    pub readable: bool,
    /// The fd accepts writes again.
    pub writable: bool,
}

/// Interest to (re-)register for an fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake on readability.
    pub read: bool,
    /// Wake on writability (armed only while output is backed up).
    pub write: bool,
    /// Edge-triggered: one wakeup per readiness *transition*; the consumer
    /// must drain until `WouldBlock`.
    pub edge: bool,
    /// Exclusive wakeup across epoll instances sharing the fd (listener).
    pub exclusive: bool,
}

impl Interest {
    fn bits(self) -> u32 {
        let mut e = 0;
        if self.read {
            e |= EPOLLIN;
        }
        if self.write {
            e |= EPOLLOUT;
        }
        if self.edge {
            e |= EPOLLET;
        }
        if self.exclusive {
            // EPOLLEXCLUSIVE permits only IN/OUT/ET/WAKEUP alongside it —
            // notably not EPOLLRDHUP, so hangup interest is reserved for
            // plain registrations.
            e |= EPOLLEXCLUSIVE;
        } else {
            e |= EPOLLRDHUP;
        }
        e
    }
}

/// An owned epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates an epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        // SAFETY: plain syscall, no pointers.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.bits(),
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` with `interest` under `token`.
    pub fn add(&self, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes the registered interest of `fd`.
    pub fn modify(&self, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregisters `fd`. Errors are ignored: the common caller is teardown
    /// where the fd may already be gone.
    pub fn delete(&self, fd: RawFd) {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // SAFETY: same contract as `ctl`; kernels before 2.6.9 required a
        // non-null event pointer for DEL, so one is always passed.
        let _ = unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) };
    }

    /// Blocks until at least one registered fd is ready, the timeout
    /// elapses (`timeout_ms < 0` blocks forever), or a signal interrupts —
    /// interruptions are retried internally. Appends ready events to
    /// `out` (cleared first) and returns how many arrived.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        const MAX_EVENTS: usize = 64;
        let mut raw = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let n = loop {
            // SAFETY: `raw` is a valid buffer of MAX_EVENTS entries for the
            // duration of the call.
            match cvt(unsafe {
                epoll_wait(self.fd, raw.as_mut_ptr(), MAX_EVENTS as c_int, timeout_ms)
            }) {
                Ok(n) => break n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        out.clear();
        for ev in &raw[..n] {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                // Error/hangup conditions are folded into readability: the
                // next read returns 0 or the error, which the connection
                // logic already handles as a drop.
                readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0,
                writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `fd` is owned by this instance and closed exactly once.
        unsafe { close(self.fd) };
    }
}

/// A clonable wake signal: a level-triggered `eventfd` shared by every
/// worker. One [`wake`](WakeFd::wake) makes it permanently readable, so
/// all epoll instances it is registered with wake — now and on every
/// subsequent `wait` — until the server exits. The fd closes when the last
/// clone drops.
#[derive(Debug, Clone)]
pub struct WakeFd {
    inner: std::sync::Arc<OwnedFd>,
}

#[derive(Debug)]
struct OwnedFd {
    fd: RawFd,
}

impl Drop for OwnedFd {
    fn drop(&mut self) {
        // SAFETY: owned fd, closed exactly once.
        unsafe { close(self.fd) };
    }
}

impl WakeFd {
    /// Creates the eventfd (nonblocking, close-on-exec).
    pub fn new() -> io::Result<Self> {
        // SAFETY: plain syscall, no pointers.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(WakeFd {
            inner: std::sync::Arc::new(OwnedFd { fd }),
        })
    }

    /// The raw fd, for registration with [`Epoll::add`] (level-triggered
    /// read interest; never drain it).
    pub fn fd(&self) -> RawFd {
        self.inner.fd
    }

    /// Makes the fd readable (idempotent; an already-signalled counter at
    /// `u64::MAX - 1` would make the write block, which `EFD_NONBLOCK`
    /// turns into a harmless `EAGAIN`).
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a live stack value to an owned fd.
        let _ = unsafe { write(self.inner.fd, (&one as *const u64).cast(), 8) };
    }
}

/// Best-effort explicit socket buffer sizing (`SO_SNDBUF` / `SO_RCVBUF`,
/// 0 = leave the kernel default). Serving multi-hundred-KB responses over
/// loopback with kernel-default buffers hits a TCP corner: the loopback
/// MSS is ~64 KiB, and a receive buffer smaller than twice that can leave
/// a drained-then-reopened window below the 2×MSS window-update threshold
/// — the ACK is suppressed and the sender sits in zero-window persist
/// probes (200 ms, 400 ms, …). Explicit buffers sized above the largest
/// common response sidestep the whole regime; errors are ignored because
/// a clamped buffer (rmem_max/wmem_max) still helps.
pub fn set_socket_buffers(fd: RawFd, sndbuf: usize, rcvbuf: usize) {
    for (opt, bytes) in [(SO_SNDBUF, sndbuf), (SO_RCVBUF, rcvbuf)] {
        if bytes > 0 {
            let val = bytes.min(i32::MAX as usize) as c_int;
            // SAFETY: passes a valid pointer/length pair for one c_int.
            let _ = unsafe {
                setsockopt(
                    fd,
                    SOL_SOCKET,
                    opt,
                    (&val as *const c_int).cast(),
                    std::mem::size_of::<c_int>() as u32,
                )
            };
        }
    }
}

/// Interest presets used by the serve loop.
pub mod interest {
    use super::Interest;

    /// Edge-triggered read interest for a connection.
    pub const CONN_READ: Interest = Interest {
        read: true,
        write: false,
        edge: true,
        exclusive: false,
    };

    /// Edge-triggered read+write interest for a connection with backed-up
    /// output.
    pub const CONN_READ_WRITE: Interest = Interest {
        read: true,
        write: true,
        edge: true,
        exclusive: false,
    };

    /// Exclusive level-triggered read interest for the shared listener.
    pub const LISTENER: Interest = Interest {
        read: true,
        write: false,
        edge: false,
        exclusive: true,
    };

    /// Level-triggered read interest for the wake eventfd.
    pub const WAKE: Interest = Interest {
        read: true,
        write: false,
        edge: false,
        exclusive: false,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::{Duration, Instant};

    #[test]
    fn wait_times_out_when_nothing_is_ready() {
        let ep = Epoll::new().unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        let n = ep.wait(&mut events, 30).unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn readiness_and_tokens_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(listener.as_raw_fd(), interest::LISTENER, 7).unwrap();

        let mut events = Vec::new();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "idle listener");

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        assert!(ep.wait(&mut events, 2000).unwrap() >= 1);
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        let (mut conn, _) = listener.accept().unwrap();
        conn.set_nonblocking(true).unwrap();
        ep.add(conn.as_raw_fd(), interest::CONN_READ, 9).unwrap();
        client.write_all(b"ping").unwrap();
        assert!(ep.wait(&mut events, 2000).unwrap() >= 1);
        assert!(events.iter().any(|e| e.token == 9 && e.readable));
        let mut buf = [0u8; 8];
        assert_eq!(conn.read(&mut buf).unwrap(), 4);

        // Edge-triggered: drained socket produces no further events.
        assert_eq!(ep.wait(&mut events, 30).unwrap(), 0);

        // Re-arming with write interest reports writability immediately on
        // an idle socket.
        ep.modify(conn.as_raw_fd(), interest::CONN_READ_WRITE, 9)
            .unwrap();
        assert!(ep.wait(&mut events, 2000).unwrap() >= 1);
        assert!(events.iter().any(|e| e.token == 9 && e.writable));

        ep.delete(conn.as_raw_fd());
        client.write_all(b"gone").unwrap();
        assert_eq!(ep.wait(&mut events, 30).unwrap(), 0, "deregistered fd");
    }

    #[test]
    fn wake_fd_wakes_every_instance_and_stays_readable() {
        let wake = WakeFd::new().unwrap();
        let eps: Vec<Epoll> = (0..3).map(|_| Epoll::new().unwrap()).collect();
        for ep in &eps {
            ep.add(wake.fd(), interest::WAKE, u64::MAX).unwrap();
        }
        let mut events = Vec::new();
        for ep in &eps {
            assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "not yet signalled");
        }
        wake.clone().wake();
        for ep in &eps {
            // Level-triggered and never drained: readable now...
            assert!(ep.wait(&mut events, 2000).unwrap() >= 1);
            assert!(events[0].token == u64::MAX && events[0].readable);
            // ...and still readable on the next wait.
            assert!(ep.wait(&mut events, 2000).unwrap() >= 1);
        }
    }
}
