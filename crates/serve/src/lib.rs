//! `rlz-serve` — the document-retrieval network front end.
//!
//! The paper's headline claim is interactive-speed document retrieval from
//! a compressed web collection; this crate puts that read path behind a
//! socket. It serves any [`rlz_store::DocStore`] family (RLZ, blocked,
//! raw — file-backed or resident) over a small length-prefixed binary
//! protocol:
//!
//! * [`protocol`] — frame layout, opcodes, status codes, and a hardened
//!   zero-copy parser (see its module docs for the full wire format);
//! * [`server`] — readiness-driven worker threads over a shared
//!   nonblocking listener; no external async runtime. On Linux the workers
//!   block in the kernel via raw `epoll` bindings ([`event`]) — zero
//!   busy-wait when idle — with a portable poll-loop fallback elsewhere
//!   (or via `RLZ_SERVE_BACKEND=portable`). Frame draining is
//!   pipelining-aware (buffered GET runs are batched through the
//!   seek-aware `get_batch`), MGETs deduplicate repeated ids, and an
//!   optional byte-budgeted hot-document cache serves popular documents
//!   straight from memory. Each worker reuses per-connection buffers plus
//!   the store layer's thread-local decode scratch, so a warm single-GET
//!   request performs zero heap allocations end to end;
//! * [`metrics`] — a zero-dependency observability layer: lock-free
//!   per-opcode request/error/byte counters and √2-bucketed latency
//!   histograms (wait-free to record, nanoseconds on the hot path),
//!   scraped through the METRICS opcode or an optional plaintext HTTP
//!   listener in Prometheus text exposition format;
//! * [`client`] — a blocking client (with split `send_*`/`recv_*`
//!   pipelining calls) used by the examples, the tests, and the
//!   `serve_load` benchmark driver in `rlz-bench`.
//!
//! # Example
//!
//! ```
//! use rlz_serve::{serve, Client, ServeConfig};
//! use rlz_store::{DocStore, RlzStore, RlzStoreBuilder};
//! use rlz_core::{Dictionary, PairCoding, SampleStrategy};
//! use std::sync::Arc;
//!
//! let docs: Vec<Vec<u8>> = (0..20)
//!     .map(|i| format!("<page>{i} shared header</page>").into_bytes())
//!     .collect();
//! let all: Vec<u8> = docs.concat();
//! let dir = std::env::temp_dir().join(format!("rlz-serve-doc-{}", std::process::id()));
//! let slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();
//! let dict = Dictionary::sample(&all, 256, 64, SampleStrategy::Evenly);
//! RlzStoreBuilder::new(dict, PairCoding::UV).build(&dir, &slices).unwrap();
//!
//! let store: Arc<dyn DocStore> = Arc::new(RlzStore::open(&dir).unwrap());
//! let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//! let handle = serve(store, listener, ServeConfig { threads: 2, ..Default::default() }).unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! assert_eq!(client.get(7).unwrap(), docs[7]);
//! assert_eq!(client.stat().unwrap().num_docs, 20);
//! client.shutdown_server().unwrap();
//! handle.join();
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

// Unsafe code is confined to the `event` module (raw epoll/eventfd
// syscall bindings); everything else in the crate denies it.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
#[cfg(target_os = "linux")]
pub mod event;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, ServeStats};
pub use metrics::{Histogram, HistogramSnapshot, Metrics, Op};
pub use server::{serve, Action, Backend, ResolvedBackend, Responder, ServeConfig, ServerHandle};
