//! A small blocking client for the `rlz-serve` protocol.
//!
//! One [`Client`] wraps one TCP connection. The convenience calls
//! ([`get`](Client::get), [`mget`](Client::mget), …) issue one request at
//! a time; the split `send_*` / `recv_*` pairs pipeline — write several
//! request frames before reading the responses back **in request order**,
//! which is how the `rlz-bench` load generator keeps a configurable number
//! of frames outstanding per connection. Response buffers are reused
//! across calls, so a warm `get_into` allocates only when a document
//! outgrows every previous one.

use crate::protocol::{
    self, MAX_RESPONSE_LEN, MGET_ENTRY_ERR, STATUS_BUSY, STATUS_OK, STAT_BODY_LEN,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use rlz_store::{Integrity, StoreStats};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket failure (includes the server closing the connection).
    Io(io::Error),
    /// The byte stream violates the protocol.
    Protocol(&'static str),
    /// The server answered with an error frame.
    Server {
        /// The response status code (`STATUS_*`).
        status: u8,
        /// The server's UTF-8 message.
        message: String,
    },
    /// [`Client::connect_retry`] exhausted its deadline without reaching a
    /// server that would take the connection.
    ConnectTimedOut {
        /// The address that never answered.
        addr: SocketAddr,
        /// Connection attempts made before giving up.
        attempts: u32,
        /// The failure of the last attempt.
        last: Box<ClientError>,
    },
}

impl ClientError {
    /// True when the server answered `ERR_BUSY` — the request was shed
    /// (or the connection refused at the cap) and a backoff-retry is the
    /// right response.
    pub fn is_busy(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                status: STATUS_BUSY,
                ..
            }
        )
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "serve client I/O error: {e}"),
            ClientError::Protocol(what) => write!(f, "serve protocol violation: {what}"),
            ClientError::Server { status, message } => {
                write!(f, "server error {status:#04x}: {message}")
            }
            ClientError::ConnectTimedOut {
                addr,
                attempts,
                last,
            } => write!(
                f,
                "no server at {addr} after {attempts} connection attempts (last error: {last})"
            ),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::ConnectTimedOut { last, .. } => Some(last),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The jittered exponential backoff behind [`Client::connect_retry`],
/// split out so tests can drive it deterministically from a seed.
///
/// Delay `n` (1-based) is drawn uniformly from `[d/2, d]` where
/// `d = min(cap, base · 2^(n-1))` — "equal jitter", which keeps a floor
/// under the delay (unlike full jitter) while still spreading a fleet of
/// retrying clients apart. The growth exponent saturates so long outages
/// cannot overflow the doubling.
#[derive(Debug)]
pub struct RetrySchedule {
    rng: StdRng,
    base: Duration,
    cap: Duration,
    attempt: u32,
}

impl RetrySchedule {
    /// The first delay is drawn around this. 10 ms rides out the common
    /// case of a server mid-startup without hammering it.
    pub const BASE: Duration = Duration::from_millis(10);
    /// Delays never exceed this.
    pub const CAP: Duration = Duration::from_millis(500);

    /// A schedule with the production bounds and an explicit seed.
    pub fn new(seed: u64) -> Self {
        Self::with_bounds(seed, Self::BASE, Self::CAP)
    }

    /// A schedule with custom bounds (`base` must not be zero).
    pub fn with_bounds(seed: u64, base: Duration, cap: Duration) -> Self {
        assert!(base > Duration::ZERO, "backoff base must be positive");
        RetrySchedule {
            rng: StdRng::seed_from_u64(seed),
            base,
            cap,
            attempt: 0,
        }
    }

    /// The uncapped-growth delay for the next draw — the upper jitter
    /// bound. Exposed so tests can assert the jitter window exactly.
    pub fn peek_raw_delay(&self) -> Duration {
        let exp = self.attempt.min(20);
        self.cap.min(self.base.saturating_mul(1u32 << exp))
    }

    /// Draws the next delay: uniform in `[raw/2, raw]`, then advances the
    /// exponential growth.
    pub fn next_delay(&mut self) -> Duration {
        let raw = self.peek_raw_delay();
        self.attempt = self.attempt.saturating_add(1);
        let nanos = raw.as_nanos() as u64;
        Duration::from_nanos(self.rng.random_range(nanos / 2..=nanos))
    }

    /// How many delays have been drawn so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }
}

/// Everything the extended STAT response reports: the store statistics
/// plus the serving layer's hot-document cache counters and backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// The store-level statistics (first 24 body bytes).
    pub store: StoreStats,
    /// Hot-document cache byte budget; 0 when the cache is disabled.
    pub cache_budget_bytes: u64,
    /// Cache lookups served from memory.
    pub cache_hits: u64,
    /// Cache lookups that fell through to the store.
    pub cache_misses: u64,
    /// Decoded payload bytes currently resident in the cache.
    pub cache_resident_bytes: u64,
    /// The server's event backend (`protocol::BACKEND_*`).
    pub backend: u8,
}

impl ServeStats {
    /// The backend tag as the name used in logs and bench artifacts.
    pub fn backend_name(&self) -> &'static str {
        match self.backend {
            protocol::BACKEND_EPOLL => "epoll",
            protocol::BACKEND_PORTABLE => "portable",
            _ => "unknown",
        }
    }
}

/// One blocking protocol connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Reused request-encoding buffer.
    req: Vec<u8>,
    /// Reused response-body buffer.
    resp: Vec<u8>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // A receive buffer sized above the largest common response keeps
        // the TCP window ahead of multi-hundred-KB MGET bodies; with the
        // kernel default (~128 KiB) against loopback's ~64 KiB MSS, a
        // zero-window episode can suppress the reopening window update and
        // park the server in 200 ms persist probes (see
        // `event::set_socket_buffers`).
        #[cfg(target_os = "linux")]
        crate::event::set_socket_buffers(
            std::os::unix::io::AsRawFd::as_raw_fd(&stream),
            0,
            4 << 20,
        );
        Ok(Client {
            stream,
            req: Vec::new(),
            resp: Vec::new(),
        })
    }

    /// Connects with jittered exponential backoff, retrying until
    /// `deadline` elapses — for driving a server that is still starting up
    /// (the CI smoke flow) or one that is momentarily overloaded.
    ///
    /// Each attempt that reaches a server is confirmed with a STAT probe,
    /// so an `ERR_BUSY` rejection (the server is at its connection cap)
    /// counts as a retryable failure instead of handing back a connection
    /// that is already closing. The backoff is a [`RetrySchedule`] seeded
    /// per-process (mixing the port keeps two clients racing for different
    /// servers out of phase) so a fleet of retrying clients does not
    /// stampede in lockstep. Gives up with
    /// [`ClientError::ConnectTimedOut`] once the deadline passes.
    pub fn connect_retry(addr: SocketAddr, deadline: Duration) -> Result<Self, ClientError> {
        let seed =
            0x9E37_79B9_7F4A_7C15u64 ^ ((addr.port() as u64) << 32) ^ std::process::id() as u64;
        Self::connect_retry_with_schedule(addr, deadline, RetrySchedule::new(seed))
    }

    /// [`connect_retry`](Client::connect_retry) with a caller-supplied
    /// schedule — the deterministic-backoff tests seed their own.
    pub fn connect_retry_with_schedule(
        addr: SocketAddr,
        deadline: Duration,
        mut schedule: RetrySchedule,
    ) -> Result<Self, ClientError> {
        let start = Instant::now();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let failure = match Self::connect(addr) {
                Ok(mut client) => match client.server_stat() {
                    Ok(_) => return Ok(client),
                    Err(e) => e,
                },
                Err(e) => ClientError::Io(e),
            };
            if start.elapsed() >= deadline {
                return Err(ClientError::ConnectTimedOut {
                    addr,
                    attempts,
                    last: Box::new(failure),
                });
            }
            let jittered = schedule.next_delay();
            // Never sleep past the deadline itself: the last sleep is
            // clamped to what remains, so total wall time stays within
            // one failed-attempt latency of the deadline.
            let remaining = deadline.saturating_sub(start.elapsed());
            std::thread::sleep(jittered.min(remaining).max(Duration::from_millis(1)));
        }
    }

    /// Fetches document `id`.
    pub fn get(&mut self, id: u32) -> Result<Vec<u8>, ClientError> {
        let mut out = Vec::new();
        self.get_into(id, &mut out)?;
        Ok(out)
    }

    /// Fetches document `id`, appending its bytes to `out`.
    pub fn get_into(&mut self, id: u32, out: &mut Vec<u8>) -> Result<(), ClientError> {
        self.send_get(id)?;
        self.recv_get_into(out)
    }

    /// Writes a GET request frame without waiting for the response —
    /// pair with [`recv_get_into`](Client::recv_get_into). Responses come
    /// back in request order.
    pub fn send_get(&mut self, id: u32) -> Result<(), ClientError> {
        self.req.clear();
        protocol::write_get(&mut self.req, id);
        self.stream.write_all(&self.req)?;
        Ok(())
    }

    /// Reads one GET response, appending the document bytes to `out`.
    pub fn recv_get_into(&mut self, out: &mut Vec<u8>) -> Result<(), ClientError> {
        let (status, body) = read_response(&mut self.stream, &mut self.resp)?;
        check_ok(status, body)?;
        out.extend_from_slice(body);
        Ok(())
    }

    /// Fetches a batch of documents, in request order. Any failed entry
    /// (a corrupt document, for instance) fails the whole call with that
    /// entry's error; use [`mget_results`](Client::mget_results) for
    /// per-entry containment.
    pub fn mget(&mut self, ids: &[u32]) -> Result<Vec<Vec<u8>>, ClientError> {
        self.send_mget(ids)?;
        self.recv_mget(ids.len())
    }

    /// Fetches a batch with **per-entry** error containment: each slot is
    /// either the document bytes or the server's `(status, message)` for
    /// that entry — one corrupt document does not cost the rest of the
    /// batch. The outer `Err` covers whole-response failures (transport,
    /// protocol, an error frame such as `ERR_BUSY` or a whole-batch
    /// out-of-range rejection).
    #[allow(clippy::type_complexity)]
    pub fn mget_results(
        &mut self,
        ids: &[u32],
    ) -> Result<Vec<Result<Vec<u8>, (u8, String)>>, ClientError> {
        self.send_mget(ids)?;
        self.recv_mget_results(ids.len())
    }

    /// Writes an MGET request frame without waiting for the response —
    /// pair with [`recv_mget`](Client::recv_mget).
    pub fn send_mget(&mut self, ids: &[u32]) -> Result<(), ClientError> {
        self.req.clear();
        protocol::write_mget(&mut self.req, ids);
        self.stream.write_all(&self.req)?;
        Ok(())
    }

    /// Reads one MGET response of `expected` documents, in request order.
    /// A failed entry fails the call with that entry's server error.
    pub fn recv_mget(&mut self, expected: usize) -> Result<Vec<Vec<u8>>, ClientError> {
        let entries = self.recv_mget_results(expected)?;
        let mut docs = Vec::with_capacity(entries.len());
        for entry in entries {
            match entry {
                Ok(doc) => docs.push(doc),
                Err((status, message)) => return Err(ClientError::Server { status, message }),
            }
        }
        Ok(docs)
    }

    /// Reads one MGET response of `expected` entries with per-entry error
    /// containment — pair with [`send_mget`](Client::send_mget).
    #[allow(clippy::type_complexity)]
    pub fn recv_mget_results(
        &mut self,
        expected: usize,
    ) -> Result<Vec<Result<Vec<u8>, (u8, String)>>, ClientError> {
        let (status, body) = read_response(&mut self.stream, &mut self.resp)?;
        check_ok(status, body)?;
        let mut at = 0usize;
        let count = read_u32(body, &mut at)? as usize;
        if count != expected {
            return Err(ClientError::Protocol("MGET answered a different count"));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let elen = read_u32(body, &mut at)?;
            let failed = elen & MGET_ENTRY_ERR != 0;
            let len = (elen & !MGET_ENTRY_ERR) as usize;
            let payload = body
                .get(at..at + len)
                .ok_or(ClientError::Protocol("MGET entry overruns frame"))?;
            at += len;
            if failed {
                let (&entry_status, message) = payload
                    .split_first()
                    .ok_or(ClientError::Protocol("MGET error entry without a status"))?;
                entries.push(Err((
                    entry_status,
                    String::from_utf8_lossy(message).into_owned(),
                )));
            } else {
                entries.push(Ok(payload.to_vec()));
            }
        }
        if at != body.len() {
            return Err(ClientError::Protocol("trailing bytes after MGET body"));
        }
        Ok(entries)
    }

    /// Stores a new document, returning the id the server assigned. An
    /// `Ok` means the write is acked under the server's fsync policy (see
    /// the README durability matrix); `ERR_BUSY` / `ERR_WAL_FULL` mean
    /// nothing was written and the call is safe to retry after backoff.
    pub fn put(&mut self, doc: &[u8]) -> Result<u32, ClientError> {
        self.req.clear();
        protocol::write_put(&mut self.req, doc);
        self.stream.write_all(&self.req)?;
        let (status, body) = read_response(&mut self.stream, &mut self.resp)?;
        check_ok(status, body)?;
        if body.len() != 4 {
            return Err(ClientError::Protocol("PUT answered without a document id"));
        }
        let mut at = 0usize;
        read_u32(body, &mut at)
    }

    /// Appends `bytes` to document `id`.
    pub fn append(&mut self, id: u32, bytes: &[u8]) -> Result<(), ClientError> {
        self.req.clear();
        protocol::write_append(&mut self.req, id, bytes);
        self.stream.write_all(&self.req)?;
        self.recv_empty_ok("APPEND")
    }

    /// Deletes document `id` (reads of it answer `ERR_RANGE` afterwards).
    pub fn delete(&mut self, id: u32) -> Result<(), ClientError> {
        self.req.clear();
        protocol::write_delete(&mut self.req, id);
        self.stream.write_all(&self.req)?;
        self.recv_empty_ok("DELETE")
    }

    /// Reads one response that must be an empty-bodied OK.
    fn recv_empty_ok(&mut self, _what: &'static str) -> Result<(), ClientError> {
        let (status, body) = read_response(&mut self.stream, &mut self.resp)?;
        check_ok(status, body)?;
        if !body.is_empty() {
            return Err(ClientError::Protocol("write ack carries unexpected bytes"));
        }
        Ok(())
    }

    /// Fetches store statistics (the first 24 bytes of the STAT body; use
    /// [`server_stat`](Client::server_stat) for the serving-layer fields).
    pub fn stat(&mut self) -> Result<StoreStats, ClientError> {
        Ok(self.server_stat()?.store)
    }

    /// Fetches the full extended statistics: store accounting plus the
    /// hot-document cache counters and the event backend.
    pub fn server_stat(&mut self) -> Result<ServeStats, ClientError> {
        self.req.clear();
        protocol::write_stat(&mut self.req);
        self.stream.write_all(&self.req)?;
        let (status, body) = read_response(&mut self.stream, &mut self.resp)?;
        check_ok(status, body)?;
        if body.len() != STAT_BODY_LEN {
            return Err(ClientError::Protocol("STAT body has the wrong length"));
        }
        let word = |i: usize| u64::from_le_bytes(body[i..i + 8].try_into().expect("8 bytes"));
        let integrity = Integrity::from_tag(body[57]).ok_or(ClientError::Protocol(
            "STAT reports an unknown integrity tag",
        ))?;
        Ok(ServeStats {
            store: StoreStats {
                num_docs: word(0),
                payload_bytes: word(8),
                max_record_len: word(16),
                integrity,
            },
            cache_budget_bytes: word(24),
            cache_hits: word(32),
            cache_misses: word(40),
            cache_resident_bytes: word(48),
            backend: body[56],
        })
    }

    /// Fetches the server's metrics in Prometheus text exposition format
    /// via the METRICS opcode. A server running with metrics disabled
    /// answers `ERR_BAD_OPCODE` (surfaced as [`ClientError::Server`]).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.req.clear();
        protocol::write_metrics(&mut self.req);
        self.stream.write_all(&self.req)?;
        let (status, body) = read_response(&mut self.stream, &mut self.resp)?;
        check_ok(status, body)?;
        String::from_utf8(body.to_vec())
            .map_err(|_| ClientError::Protocol("METRICS body is not UTF-8"))
    }

    /// Asks the server to exit cleanly. `Ok` means the server acknowledged
    /// and is stopping.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.req.clear();
        protocol::write_shutdown(&mut self.req);
        self.stream.write_all(&self.req)?;
        let (status, body) = read_response(&mut self.stream, &mut self.resp)?;
        check_ok(status, body)
    }

    /// Sends raw bytes and reads one response frame — the robustness tests
    /// use this to deliver malformed frames. Returns `(status, body)`.
    pub fn send_raw(&mut self, frame: &[u8]) -> Result<(u8, Vec<u8>), ClientError> {
        self.stream.write_all(frame)?;
        let (status, body) = read_response(&mut self.stream, &mut self.resp)?;
        Ok((status, body.to_vec()))
    }

    /// Sends raw bytes without waiting for any response — for tests that
    /// tear the connection down mid-frame.
    pub fn send_raw_no_response(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }
}

/// Reads one response frame into `buf`, returning `(status, body)`.
fn read_response<'a>(
    stream: &mut TcpStream,
    buf: &'a mut Vec<u8>,
) -> Result<(u8, &'a [u8]), ClientError> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header);
    if len == 0 {
        return Err(ClientError::Protocol("zero-length response frame"));
    }
    if len > MAX_RESPONSE_LEN {
        return Err(ClientError::Protocol("response frame exceeds sanity cap"));
    }
    buf.clear();
    buf.resize(len as usize, 0);
    stream.read_exact(buf)?;
    Ok((buf[0], &buf[1..]))
}

fn check_ok(status: u8, body: &[u8]) -> Result<(), ClientError> {
    if status == STATUS_OK {
        return Ok(());
    }
    Err(ClientError::Server {
        status,
        message: String::from_utf8_lossy(body).into_owned(),
    })
}

fn read_u32(body: &[u8], at: &mut usize) -> Result<u32, ClientError> {
    let bytes = body
        .get(*at..*at + 4)
        .ok_or(ClientError::Protocol("truncated integer in response"))?;
    *at += 4;
    Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn retry_schedule_delays_stay_inside_the_jitter_window() {
        let mut sched = RetrySchedule::new(7);
        let mut raws = Vec::new();
        for _ in 0..12 {
            let raw = sched.peek_raw_delay();
            let d = sched.next_delay();
            assert!(
                d >= raw / 2 && d <= raw,
                "delay {d:?} outside [{:?}, {raw:?}]",
                raw / 2
            );
            raws.push(raw);
        }
        // Exponential growth from BASE, clamped at CAP.
        assert_eq!(raws[0], RetrySchedule::BASE);
        assert_eq!(raws[1], RetrySchedule::BASE * 2);
        assert_eq!(raws[2], RetrySchedule::BASE * 4);
        assert!(raws.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*raws.last().unwrap(), RetrySchedule::CAP);
        assert_eq!(sched.attempts(), 12);
    }

    #[test]
    fn retry_schedule_is_deterministic_per_seed() {
        let draw = |seed: u64| -> Vec<Duration> {
            let mut s = RetrySchedule::new(seed);
            (0..16).map(|_| s.next_delay()).collect()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn connect_retry_honors_the_total_deadline() {
        // Bind-then-drop yields a port that refuses connections fast.
        let port = {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr").port()
        };
        let addr: SocketAddr = format!("127.0.0.1:{port}").parse().expect("addr");
        let deadline = Duration::from_millis(80);
        let sched =
            RetrySchedule::with_bounds(9, Duration::from_millis(5), Duration::from_millis(20));
        let start = Instant::now();
        let err = Client::connect_retry_with_schedule(addr, deadline, sched)
            .expect_err("nothing listens there");
        let elapsed = start.elapsed();
        match err {
            ClientError::ConnectTimedOut {
                addr: a, attempts, ..
            } => {
                assert_eq!(a, addr);
                assert!(attempts >= 2, "only {attempts} attempts in {elapsed:?}");
            }
            other => panic!("expected ConnectTimedOut, got {other}"),
        }
        // The giving-up check runs right after a failed attempt, and no
        // sleep extends past the deadline — generous slack for CI jitter.
        assert!(elapsed >= deadline, "gave up early at {elapsed:?}");
        assert!(
            elapsed < deadline + Duration::from_millis(500),
            "overshot deadline: {elapsed:?}"
        );
    }
}
