//! The `rlz-serve` binary: serve a built document store over TCP.
//!
//! ```text
//! rlz-serve --store DIR [--addr 127.0.0.1:7641] [--threads N]
//!           [--family auto|live|rlz|blocked|ascii] [--resident]
//!           [--batch-threads N] [--no-shutdown-opcode]
//!           [--backend auto|epoll|portable] [--cache-bytes N]
//!           [--max-connections N] [--idle-timeout-ms N]
//!           [--shed-queue-depth N] [--fsync always|interval:<ms>|never]
//!           [--seal-bytes N] [--wal-soft-bytes N] [--wal-max-bytes N]
//!           [--metrics-addr HOST:PORT] [--no-metrics]
//! ```
//!
//! The store family is autodetected from the directory layout (`MANIFEST`
//! → live, `dict.bin` → RLZ, `blocks.bin` → blocked, `data.bin` → raw)
//! unless `--family` forces one. A live store accepts the PUT / APPEND /
//! DELETE opcodes; every other family serves read-only and answers writes
//! with ERR_READONLY. `--fsync` sets the WAL durability policy for acked
//! writes, `--seal-bytes` the tail size that triggers sealing a segment,
//! and `--wal-soft-bytes` / `--wal-max-bytes` the backlog bounds (writes
//! shed with ERR_BUSY past the soft bound; the hard bound seals to drain
//! the log, answering ERR_WAL_FULL only if that seal reclaims nothing).
//! `--resident` loads the payload into memory so retrieval
//! does no disk I/O. `--backend` picks the event backend (`auto` follows
//! `RLZ_SERVE_BACKEND`, then epoll on Linux); `--cache-bytes N` enables
//! the hot-document cache with an N-byte budget. The server runs until it
//! receives the protocol's SHUTDOWN opcode (disable with
//! `--no-shutdown-opcode`) or the process is signalled.
//!
//! Overload controls: `--max-connections N` rejects connections past N
//! with a single ERR_BUSY frame, `--idle-timeout-ms N` drops connections
//! silent for N ms, and `--shed-queue-depth N` answers GET/MGET with
//! ERR_BUSY while more than N connections are queued behind the current
//! turn, keeping tail latency bounded instead of collapsing.
//!
//! Observability: metrics are collected by default and served through the
//! protocol's METRICS opcode; `--metrics-addr HOST:PORT` additionally
//! starts a plaintext HTTP/1.0 listener answering `GET /metrics` in
//! Prometheus text exposition format (port 0 picks a free port, reported
//! at startup). `--no-metrics` disables collection entirely (a benchmark
//! ablation; the METRICS opcode then answers ERR_BAD_OPCODE).

use rlz_serve::{serve, Backend, ServeConfig};
use rlz_store::{
    AsciiStore, BlockedStore, DocStore, FsyncPolicy, LiveConfig, LiveStore, RlzStore, WriteStore,
    MANIFEST_FILE,
};
use std::net::TcpListener;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: rlz-serve --store DIR [--addr HOST:PORT] [--threads N]\n\
         \x20                [--family auto|live|rlz|blocked|ascii] [--resident]\n\
         \x20                [--batch-threads N] [--no-shutdown-opcode]\n\
         \x20                [--backend auto|epoll|portable] [--cache-bytes N]\n\
         \x20                [--max-connections N] [--idle-timeout-ms N]\n\
         \x20                [--shed-queue-depth N]\n\
         \x20                [--fsync always|interval:<ms>|never] [--seal-bytes N]\n\
         \x20                [--wal-soft-bytes N] [--wal-max-bytes N]\n\
         \x20                [--metrics-addr HOST:PORT] [--no-metrics]"
    );
    std::process::exit(2)
}

/// The opened store plus, for the live family, its write handle and the
/// recovery accounting worth reporting at startup.
struct OpenedStore {
    store: Arc<dyn DocStore>,
    writer: Option<Arc<dyn WriteStore>>,
    recovery: Option<rlz_store::RecoveryInfo>,
}

fn open_store(
    dir: &Path,
    family: &str,
    resident: bool,
    live_cfg: LiveConfig,
) -> Result<OpenedStore, String> {
    let family = match family {
        "auto" => {
            // A live directory also carries dict.bin, so MANIFEST wins.
            if dir.join(MANIFEST_FILE).exists() {
                "live"
            } else if dir.join("dict.bin").exists() {
                "rlz"
            } else if dir.join("blocks.bin").exists() {
                "blocked"
            } else if dir.join("data.bin").exists() {
                "ascii"
            } else {
                return Err(format!(
                    "{}: no recognizable store layout (MANIFEST / dict.bin / blocks.bin / data.bin)",
                    dir.display()
                ));
            }
        }
        other => other,
    };
    let err = |e: rlz_store::StoreError| format!("open {} store at {}: {e}", family, dir.display());
    let read_only = |store: Arc<dyn DocStore>| OpenedStore {
        store,
        writer: None,
        recovery: None,
    };
    Ok(match (family, resident) {
        ("live", false) => {
            let live = LiveStore::open(dir, live_cfg).map_err(err)?;
            let recovery = live.recovery();
            OpenedStore {
                store: Arc::new(live.clone()),
                writer: Some(Arc::new(live)),
                recovery: Some(recovery),
            }
        }
        ("live", true) => {
            return Err("--resident is not supported for the live family \
                        (its write tail already lives in memory)"
                .to_string())
        }
        ("rlz", false) => read_only(Arc::new(RlzStore::open(dir).map_err(err)?)),
        ("rlz", true) => read_only(Arc::new(RlzStore::open_resident(dir).map_err(err)?)),
        ("blocked", false) => read_only(Arc::new(BlockedStore::open(dir).map_err(err)?)),
        ("blocked", true) => read_only(Arc::new(BlockedStore::open_resident(dir).map_err(err)?)),
        ("ascii", false) => read_only(Arc::new(AsciiStore::open(dir).map_err(err)?)),
        ("ascii", true) => read_only(Arc::new(AsciiStore::open_resident(dir).map_err(err)?)),
        (other, _) => return Err(format!("unknown store family {other:?}")),
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut store_dir: Option<String> = None;
    let mut addr = "127.0.0.1:7641".to_string();
    let mut family = "auto".to_string();
    let mut resident = false;
    let mut cfg = ServeConfig::default();
    let mut live_cfg = LiveConfig::default();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--store" => store_dir = Some(value(&mut i)),
            "--addr" => addr = value(&mut i),
            "--family" => family = value(&mut i),
            "--resident" => resident = true,
            "--threads" => cfg.threads = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--batch-threads" => {
                cfg.batch_threads = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--no-shutdown-opcode" => cfg.allow_shutdown = false,
            "--backend" => cfg.backend = Backend::parse(&value(&mut i)).unwrap_or_else(|| usage()),
            "--cache-bytes" => cfg.cache_bytes = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--max-connections" => {
                cfg.max_connections = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--idle-timeout-ms" => {
                let ms: u64 = value(&mut i).parse().unwrap_or_else(|_| usage());
                cfg.idle_timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--shed-queue-depth" => {
                cfg.shed_queue_depth = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--fsync" => {
                live_cfg.fsync = FsyncPolicy::parse(&value(&mut i)).unwrap_or_else(|| usage())
            }
            "--seal-bytes" => {
                live_cfg.seal_bytes = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--wal-soft-bytes" => {
                live_cfg.wal_soft_bytes = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--wal-max-bytes" => {
                live_cfg.wal_max_bytes = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--metrics-addr" => {
                cfg.metrics_addr = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--no-metrics" => cfg.metrics = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
        i += 1;
    }
    let Some(store_dir) = store_dir else { usage() };

    let opened = match open_store(Path::new(&store_dir), &family, resident, live_cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rlz-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let OpenedStore {
        store,
        writer,
        recovery,
    } = opened;
    cfg.writer = writer;
    let stats = store.stats();
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("rlz-serve: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let handle = match serve(store, listener, cfg.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("rlz-serve: start workers: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "rlz-serve: {} docs ({} payload bytes, max record {} bytes) listening on {} \
         ({} workers, {} backend, cache {}, shutdown opcode {})",
        stats.num_docs,
        stats.payload_bytes,
        stats.max_record_len,
        handle.addr(),
        cfg.threads.max(1),
        handle.backend().name(),
        if cfg.cache_bytes > 0 {
            format!("{} bytes", cfg.cache_bytes)
        } else {
            "off".to_string()
        },
        if cfg.allow_shutdown {
            "enabled"
        } else {
            "disabled"
        },
    );
    if let Some(metrics_addr) = handle.metrics_addr() {
        println!("rlz-serve: metrics: http://{metrics_addr}/metrics");
    } else if !cfg.metrics {
        println!("rlz-serve: metrics: disabled");
    }
    if cfg.max_connections > 0 || cfg.idle_timeout.is_some() || cfg.shed_queue_depth > 0 {
        println!(
            "rlz-serve: overload controls: max-connections {}, idle-timeout {}, shed-queue-depth {}",
            if cfg.max_connections > 0 {
                cfg.max_connections.to_string()
            } else {
                "off".to_string()
            },
            match cfg.idle_timeout {
                Some(t) => format!("{} ms", t.as_millis()),
                None => "off".to_string(),
            },
            if cfg.shed_queue_depth > 0 {
                cfg.shed_queue_depth.to_string()
            } else {
                "off".to_string()
            },
        );
    }
    if let Some(r) = recovery {
        println!(
            "rlz-serve: live write path: fsync {}, seal {} bytes, wal bounds {}/{} bytes; \
             recovery replayed {} frames ({} WAL bytes, {} torn bytes dropped, {} debris removed)",
            live_cfg.fsync.name(),
            live_cfg.seal_bytes,
            live_cfg.wal_soft_bytes,
            live_cfg.wal_max_bytes,
            r.replayed_frames,
            r.wal_bytes,
            r.torn_bytes_dropped,
            r.debris_removed,
        );
    }
    handle.join();
    println!("rlz-serve: shutdown complete");
    ExitCode::SUCCESS
}
