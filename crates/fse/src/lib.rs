//! `rlz-fse` — table-based entropy coding for the factor streams.
//!
//! Two codecs with one goal: close most of the decode-speed gap between the
//! byte-oriented `U`/`V` coders and the zlib-class `Z` coder without giving
//! up the ratio story.
//!
//! * [`tans`] — an FSE/tANS order-0 entropy coder (the entropy stage zstd
//!   popularized): per-stream normalized frequency tables, an adaptive
//!   table log so short streams pay a short table build, and an
//!   interleaved two-state decode loop. Ratio close to a Huffman stage,
//!   decode speed far past it because the hot loop is one table lookup and
//!   one bit refill per symbol.
//! * [`lz4`] — an LZ4-style fast-literal compressor: greedy hash-table
//!   match finding, token-coded sequences, no entropy stage. The decode
//!   loop is pure copying, so it runs at memcpy-class speed.
//!
//! Both containers are self-describing and fall back to a stored mode when
//! coding would not shrink the input, so incompressible data costs a
//! header byte plus a memcpy. Both decoders validate headers before
//! allocating (progressive reserve, checked arithmetic, exact frequency
//! sums), matching the hardening rules of the other stream decoders in
//! this workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lz4;
pub mod tans;

use rlz_codecs::CodecError;

/// Errors returned by the decoders.
pub type Error = CodecError;
/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Reusable decode state for [`tans::decompress_into`]: the state table is
/// grown once to the largest table seen and then reused, so a warm decode
/// loop performs zero heap allocations.
#[derive(Debug, Default)]
pub struct FseScratch {
    table: Vec<tans::DecodeEntry>,
}

impl FseScratch {
    /// Returns the table resized for `size` entries (stale contents are
    /// overwritten by the caller, which fills every slot).
    pub(crate) fn table_mut(&mut self, size: usize) -> &mut [tans::DecodeEntry] {
        if self.table.len() < size {
            self.table.resize(size, tans::DecodeEntry::default());
        }
        &mut self.table[..size]
    }
}

/// Convenience wrapper: tANS-compresses `input` into a fresh buffer.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    tans::compress(input, &mut out);
    out
}

/// Convenience wrapper: decompresses a [`tans`] container into a fresh
/// buffer with fresh scratch.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    let mut scratch = FseScratch::default();
    tans::decompress_into(data, &mut out, &mut scratch)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn crate_level_roundtrip() {
        let data = b"entropy coding for factor streams ".repeat(64);
        let comp = super::compress(&data);
        assert!(comp.len() < data.len());
        assert_eq!(super::decompress(&comp).unwrap(), data);
    }
}
