//! LZ4-style byte compressor: greedy hash-table match finding, token-coded
//! sequences, no entropy stage. Trades ratio for a decode loop that is pure
//! memcpy traffic.
//!
//! ## Container format
//!
//! ```text
//! [mode u8]                 0 = stored, 1 = lz4
//! stored: [vbyte raw_len] [raw bytes]
//! lz4:    [vbyte raw_len] then sequences:
//!         [token u8]        high nibble literal len, low nibble match len-4
//!         [lit ext bytes]   if nibble == 15: 255-run extension
//!         [literals]
//!         [offset u16 LE]   1..=65535, absent in the final sequence
//!         [match ext bytes] if nibble == 15
//! ```
//!
//! A sequence whose literals bring the output to exactly `raw_len` is the
//! final one and carries no offset. The decoder validates every length
//! against `raw_len` before copying, so corrupt inputs error without
//! over-allocating.

use crate::Result;
use rlz_codecs::{vbyte, CodecError};

const MODE_STORED: u8 = 0;
const MODE_LZ4: u8 = 1;

const MIN_MATCH: usize = 4;
const MAX_OFFSET: usize = 65_535;
const HASH_BITS: u32 = 13;
/// After `2^SKIP_TRIGGER` consecutive misses the scan step starts growing,
/// so incompressible regions are skimmed rather than hashed byte by byte.
const SKIP_TRIGGER: u32 = 6;

/// Inputs shorter than this are always stored.
const MIN_COMPRESS_LEN: usize = 16;

/// Compresses `input` into `out` (contents replaced). Falls back to stored
/// mode whenever the coded form would not be smaller.
pub fn compress(input: &[u8], out: &mut Vec<u8>) {
    out.clear();
    if input.len() >= MIN_COMPRESS_LEN && try_compress(input, out) {
        return;
    }
    out.clear();
    out.push(MODE_STORED);
    vbyte::write_u64(input.len() as u64, out);
    out.extend_from_slice(input);
}

fn try_compress(input: &[u8], out: &mut Vec<u8>) -> bool {
    let stored_len = 1 + vbyte::encoded_len_u64(input.len() as u64) + input.len();
    out.push(MODE_LZ4);
    vbyte::write_u64(input.len() as u64, out);

    // Single-slot hash table of positions + 1 (0 = empty).
    let mut table = vec![0u32; 1 << HASH_BITS];
    let search_end = input.len() - MIN_MATCH; // >= 0 given MIN_COMPRESS_LEN
    let mut anchor = 0usize;
    let mut i = 0usize;
    let mut misses = 0u32;
    while i <= search_end {
        let h = hash4(&input[i..]);
        let cand = table[h] as usize;
        table[h] = (i + 1) as u32;
        let found = cand > 0 && {
            let c = cand - 1;
            i - c <= MAX_OFFSET && input[c..c + MIN_MATCH] == input[i..i + MIN_MATCH]
        };
        if found {
            let c = cand - 1;
            let len = MIN_MATCH + common_prefix(&input[c + MIN_MATCH..], &input[i + MIN_MATCH..]);
            write_sequence(out, &input[anchor..i], Some(((i - c) as u16, len)));
            i += len;
            anchor = i;
            misses = 0;
        } else {
            i += 1 + (misses >> SKIP_TRIGGER) as usize;
            misses += 1;
        }
    }
    if anchor < input.len() {
        write_sequence(out, &input[anchor..], None);
    }
    out.len() < stored_len
}

fn write_sequence(out: &mut Vec<u8>, literals: &[u8], m: Option<(u16, usize)>) {
    let ll = literals.len();
    let ml_code = m.map_or(0, |(_, len)| len - MIN_MATCH);
    out.push(((ll.min(15) as u8) << 4) | ml_code.min(15) as u8);
    if ll >= 15 {
        write_len_ext(out, ll - 15);
    }
    out.extend_from_slice(literals);
    if let Some((offset, _)) = m {
        out.extend_from_slice(&offset.to_le_bytes());
        if ml_code >= 15 {
            write_len_ext(out, ml_code - 15);
        }
    }
}

fn write_len_ext(out: &mut Vec<u8>, mut v: usize) {
    while v >= 255 {
        out.push(255);
        v -= 255;
    }
    out.push(v as u8);
}

/// Decompresses into `out` (contents replaced, capacity reused).
pub fn decompress_into(data: &[u8], out: &mut Vec<u8>) -> Result<()> {
    out.clear();
    let Some((&mode, rest)) = data.split_first() else {
        return Err(CodecError::UnexpectedEof);
    };
    let mut pos = 0usize;
    let raw_len = vbyte::read_u64(rest, &mut pos)? as usize;
    match mode {
        MODE_STORED => {
            let end = pos
                .checked_add(raw_len)
                .ok_or(CodecError::Corrupt("stored length overflows"))?;
            let body = rest.get(pos..end).ok_or(CodecError::Corrupt(
                "stored data shorter than header claims",
            ))?;
            out.extend_from_slice(body);
            Ok(())
        }
        MODE_LZ4 => decompress_body(&rest[pos..], raw_len, out),
        _ => Err(CodecError::Corrupt("unknown lz4 container mode")),
    }
}

fn decompress_body(data: &[u8], raw_len: usize, out: &mut Vec<u8>) -> Result<()> {
    // Grow progressively rather than trusting the header outright.
    out.reserve(raw_len.min(1 << 20));
    let mut pos = 0usize;
    let next = |pos: &mut usize| -> Result<u8> {
        let b = *data.get(*pos).ok_or(CodecError::UnexpectedEof)?;
        *pos += 1;
        Ok(b)
    };
    while out.len() < raw_len {
        let token = next(&mut pos)?;
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len += read_len_ext(data, &mut pos)?;
        }
        if lit_len > raw_len - out.len() {
            return Err(CodecError::Corrupt("lz4 literals overflow output"));
        }
        let lit_end = pos
            .checked_add(lit_len)
            .ok_or(CodecError::Corrupt("lz4 literal length overflows"))?;
        let lits = data.get(pos..lit_end).ok_or(CodecError::UnexpectedEof)?;
        out.extend_from_slice(lits);
        pos = lit_end;
        if out.len() == raw_len {
            break; // final sequence: literals only
        }
        let lo = next(&mut pos)?;
        let hi = next(&mut pos)?;
        let offset = u16::from_le_bytes([lo, hi]) as usize;
        if offset == 0 || offset > out.len() {
            return Err(CodecError::Corrupt("lz4 offset out of range"));
        }
        let mut match_len = (token & 0x0F) as usize + MIN_MATCH;
        if match_len == 15 + MIN_MATCH {
            match_len += read_len_ext(data, &mut pos)?;
        }
        if match_len > raw_len - out.len() {
            return Err(CodecError::Corrupt("lz4 match overflows output"));
        }
        let start = out.len() - offset;
        if match_len <= offset {
            out.extend_from_within(start..start + match_len);
        } else {
            // Overlapping match: the copy source grows as we write.
            out.reserve(match_len);
            for idx in 0..match_len {
                let b = out[start + idx];
                out.push(b);
            }
        }
    }
    Ok(())
}

fn read_len_ext(data: &[u8], pos: &mut usize) -> Result<usize> {
    let mut total = 0usize;
    loop {
        let b = *data.get(*pos).ok_or(CodecError::UnexpectedEof)?;
        *pos += 1;
        total = total
            .checked_add(b as usize)
            .ok_or(CodecError::Corrupt("lz4 length extension overflows"))?;
        if b < 255 {
            return Ok(total);
        }
    }
}

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Length of the common prefix of `a` and `b`, compared a word at a time.
#[inline]
fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i + 8 <= n {
        let x = u64::from_le_bytes(a[i..i + 8].try_into().unwrap())
            ^ u64::from_le_bytes(b[i..i + 8].try_into().unwrap());
        if x != 0 {
            return i + (x.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(input: &[u8]) -> Vec<u8> {
        let mut comp = Vec::new();
        compress(input, &mut comp);
        let mut out = Vec::new();
        decompress_into(&comp, &mut out).expect("decode");
        out
    }

    #[test]
    fn empty_and_tiny_inputs_round_trip() {
        assert_eq!(roundtrip(b""), b"");
        assert_eq!(roundtrip(b"abc"), b"abc");
        assert_eq!(roundtrip(b"no matches here!"), b"no matches here!");
    }

    #[test]
    fn repetitive_input_compresses() {
        let input = b"abcdefgh".repeat(1000);
        let mut comp = Vec::new();
        compress(&input, &mut comp);
        assert!(comp.len() < input.len() / 10);
        assert_eq!(roundtrip(&input), input);
    }

    #[test]
    fn overlapping_matches_round_trip() {
        // Period-1 and period-3 runs force match_len > offset copies.
        let mut input = vec![b'x'; 500];
        input.extend(b"abc".repeat(200));
        input.extend(b"tail");
        assert_eq!(roundtrip(&input), input);
    }

    #[test]
    fn long_literal_runs_use_extension_bytes() {
        // Incompressible prefix > 15+255 bytes, then a compressible tail.
        let mut input: Vec<u8> = (0..400u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8)
            .collect();
        input.extend(b"repeat".repeat(50));
        assert_eq!(roundtrip(&input), input);
    }

    #[test]
    fn incompressible_input_falls_back_to_stored() {
        let mut state = 0x2545_F491u32;
        let input: Vec<u8> = (0..4096)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                state as u8
            })
            .collect();
        let mut comp = Vec::new();
        compress(&input, &mut comp);
        assert_eq!(comp[0], MODE_STORED);
        assert_eq!(comp.len(), input.len() + 1 + 2);
        assert_eq!(roundtrip(&input), input);
    }

    #[test]
    fn truncated_streams_error() {
        let input = b"the same phrase again and again ".repeat(40);
        let mut comp = Vec::new();
        compress(&input, &mut comp);
        let mut out = Vec::new();
        for cut in 0..comp.len() {
            assert!(
                decompress_into(&comp[..cut], &mut out,).is_err(),
                "truncation at {cut} did not error"
            );
        }
    }

    #[test]
    fn corrupt_offset_is_rejected() {
        let input = b"hello hello hello hello hello hello".to_vec();
        let mut comp = Vec::new();
        compress(&input, &mut comp);
        assert_eq!(comp[0], MODE_LZ4);
        // Find the first offset (after header+token+literals) and zero it.
        // Rather than parse, corrupt every byte position once and require
        // "error or different output", never a panic.
        for i in 0..comp.len() {
            let mut bad = comp.clone();
            bad[i] ^= 0xFF;
            let mut out = Vec::new();
            let _ = decompress_into(&bad, &mut out);
        }
    }
}
