//! Tabled asymmetric numeral system (tANS/FSE) entropy coder over bytes.
//!
//! The coder is order-0: it models the input as independent draws from a
//! byte histogram, normalizes that histogram to a power-of-two total, and
//! walks a state machine whose table realizes fractional-bit codes. Two
//! interleaved states hide the serial dependency of the state update behind
//! the bit-IO, the trick FSE/zstd use to keep the decode loop superscalar.
//!
//! ## Container format
//!
//! ```text
//! [mode u8]                       0 = stored, 1 = tANS
//! stored: [vbyte raw_len] [raw bytes]
//! tANS:   [vbyte raw_len]         number of symbols, >= 1
//!         [table_log u8]          MIN_TABLE_LOG ..= MAX_TABLE_LOG
//!         [k-1 u8]                distinct symbols minus one
//!         k * [sym u8][vbyte f-1] strictly increasing syms; sum f == size
//!         [vbyte state0][vbyte state1]   decoder start states, < size
//!         [bitstream][4 bytes padding]
//! ```
//!
//! The frequency table is exact (it is the normalized table, not the raw
//! histogram), so the decoder rebuilds the identical state table. The
//! table log adapts to the input length: a short stream gets a small table
//! so the per-stream table build — the analogue of inflate's per-block
//! Huffman build, and the dominant start-up cost — stays proportional to
//! the data actually coded.

use crate::{FseScratch, Result};
use rlz_codecs::bitio::{BitReader, BitWriter};
use rlz_codecs::{vbyte, CodecError};

/// Smallest state table: 32 entries.
pub const MIN_TABLE_LOG: u32 = 5;
/// Largest state table: 2048 entries (16 KiB of decode entries), small
/// enough to build per document and live in L1.
pub const MAX_TABLE_LOG: u32 = 11;

const MODE_STORED: u8 = 0;
const MODE_TANS: u8 = 1;

/// Inputs shorter than this are always stored: the table header alone
/// would dominate.
const MIN_COMPRESS_LEN: usize = 32;

/// One decode-table entry: emit `sym`, then `state = base + next(nbits)`.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct DecodeEntry {
    pub(crate) base: u16,
    pub(crate) sym: u8,
    pub(crate) nbits: u8,
}

/// Compresses `input` into `out` (contents replaced). Falls back to stored
/// mode whenever the coded form would not be smaller.
pub fn compress(input: &[u8], out: &mut Vec<u8>) {
    out.clear();
    if input.len() >= MIN_COMPRESS_LEN && try_compress(input, out) {
        return;
    }
    out.clear();
    out.push(MODE_STORED);
    vbyte::write_u64(input.len() as u64, out);
    out.extend_from_slice(input);
}

/// Attempts a tANS encode of `input` into `out`; returns false (leaving
/// `out` in an unspecified state) when stored mode would be smaller.
fn try_compress(input: &[u8], out: &mut Vec<u8>) -> bool {
    let stored_len = 1 + vbyte::encoded_len_u64(input.len() as u64) + input.len();
    let mut hist = [0u32; 256];
    for &b in input {
        hist[b as usize] += 1;
    }
    let k = hist.iter().filter(|&&f| f > 0).count() as u32;
    let table_log = choose_table_log(input.len(), k);
    let size = 1u32 << table_log;
    let norm = normalize(&hist, input.len() as u64, table_log);

    // Header: length, table log, normalized frequency table.
    out.push(MODE_TANS);
    vbyte::write_u64(input.len() as u64, out);
    out.push(table_log as u8);
    out.push((k - 1) as u8);
    let mut cumul = [0u32; 257];
    for s in 0..256 {
        cumul[s + 1] = cumul[s] + norm[s];
        if norm[s] > 0 {
            out.push(s as u8);
            vbyte::write_u32(norm[s] - 1, out);
        }
    }

    // Encode table: maps (symbol, scaled state) to the next full state.
    // Slots are assigned in spread order on both sides, so no spread array
    // is materialized.
    let mut enc_table = vec![0u16; size as usize];
    let step = spread_step(size);
    let mask = size - 1;
    let mut pos = 0u32;
    for s in 0..256 {
        for j in 0..norm[s] {
            enc_table[(cumul[s] + j) as usize] = (size + pos) as u16;
            pos = (pos + step) & mask;
        }
    }

    // Walk the input backwards so the decoder, reading forwards, sees the
    // states in emission order. Bits are staged per symbol and written in
    // reverse at the end.
    let mut pairs: Vec<(u16, u8)> = Vec::with_capacity(input.len());
    let mut states = [size; 2];
    for (i, &b) in input.iter().enumerate().rev() {
        let s = b as usize;
        let f = norm[s];
        let st = states[i & 1];
        let mut nb = 0u32;
        let mut sub = st;
        while sub >= 2 * f {
            sub >>= 1;
            nb += 1;
        }
        pairs.push(((st & ((1u32 << nb) - 1)) as u16, nb as u8));
        states[i & 1] = enc_table[(cumul[s] + (sub - f)) as usize] as u32;
    }
    vbyte::write_u32(states[0] - size, out);
    vbyte::write_u32(states[1] - size, out);

    let mut w = BitWriter::new();
    for &(bits, nb) in pairs.iter().rev() {
        w.write_bits(bits as u64, nb as u32);
    }
    w.finish_into(out);
    // Padding so refills near the end of the stream never see EOF.
    out.extend_from_slice(&[0u8; 4]);
    out.len() < stored_len
}

/// Decompresses into `out` (contents replaced, capacity reused), using
/// `scratch` for the decode table so a warm caller allocates nothing.
pub fn decompress_into(data: &[u8], out: &mut Vec<u8>, scratch: &mut FseScratch) -> Result<()> {
    out.clear();
    let Some((&mode, rest)) = data.split_first() else {
        return Err(CodecError::UnexpectedEof);
    };
    let mut pos = 0usize;
    let raw_len = vbyte::read_u64(rest, &mut pos)? as usize;
    match mode {
        MODE_STORED => {
            let end = pos
                .checked_add(raw_len)
                .ok_or(CodecError::Corrupt("stored length overflows"))?;
            let body = rest.get(pos..end).ok_or(CodecError::Corrupt(
                "stored data shorter than header claims",
            ))?;
            out.extend_from_slice(body);
            Ok(())
        }
        MODE_TANS => decompress_tans(&rest[pos..], raw_len, out, scratch),
        _ => Err(CodecError::Corrupt("unknown fse container mode")),
    }
}

fn decompress_tans(
    data: &[u8],
    raw_len: usize,
    out: &mut Vec<u8>,
    scratch: &mut FseScratch,
) -> Result<()> {
    let mut pos = 0usize;
    let next = |pos: &mut usize| -> Result<u8> {
        let b = *data.get(*pos).ok_or(CodecError::UnexpectedEof)?;
        *pos += 1;
        Ok(b)
    };
    let table_log = next(&mut pos)? as u32;
    if !(MIN_TABLE_LOG..=MAX_TABLE_LOG).contains(&table_log) {
        return Err(CodecError::Corrupt("fse table log out of range"));
    }
    let size = 1u32 << table_log;
    let k = next(&mut pos)? as usize + 1;

    // Frequency table: strictly increasing symbols, frequencies >= 1
    // summing exactly to the table size. Anything else is corrupt, and the
    // checks run before any length-proportional work happens.
    let mut norm = [0u32; 256];
    let mut syms = [0u8; 256];
    let mut prev: i32 = -1;
    let mut sum: u64 = 0;
    for slot in syms.iter_mut().take(k) {
        let s = next(&mut pos)?;
        if s as i32 <= prev {
            return Err(CodecError::Corrupt("fse symbols not strictly increasing"));
        }
        prev = s as i32;
        let f = vbyte::read_u32(data, &mut pos)?
            .checked_add(1)
            .ok_or(CodecError::Corrupt("fse frequency overflows"))?;
        if f > size {
            return Err(CodecError::Corrupt("fse frequency exceeds table size"));
        }
        norm[s as usize] = f;
        sum += f as u64;
        *slot = s;
    }
    if sum != size as u64 {
        return Err(CodecError::Corrupt("fse frequencies do not sum to table"));
    }

    let mut state0 = vbyte::read_u32(data, &mut pos)?;
    let mut state1 = vbyte::read_u32(data, &mut pos)?;
    if state0 >= size || state1 >= size {
        return Err(CodecError::Corrupt("fse start state out of range"));
    }

    // Decode table, filled in the same spread order the encoder used.
    let table = scratch.table_mut(size as usize);
    let step = spread_step(size);
    let mask = size - 1;
    let mut spread_pos = 0u32;
    for &s in syms.iter().take(k) {
        let f = norm[s as usize];
        for j in 0..f {
            let x = f + j; // scaled state in [f, 2f)
            let nbits = table_log - (31 - x.leading_zeros());
            table[spread_pos as usize] = DecodeEntry {
                base: ((x << nbits) - size) as u16,
                sym: s,
                nbits: nbits as u8,
            };
            spread_pos = (spread_pos + step) & mask;
        }
    }

    // Grow progressively rather than trusting the header outright.
    out.reserve(raw_len.min(1 << 20));
    let mut r = BitReader::new(&data[pos..]);
    let mut i = 0usize;
    while i + 1 < raw_len {
        // Both state updates are known before either needs its bits, so
        // one combined read serves the pair (symbol 0's bits are the lower
        // ones — the writer staged them first): half the refill overhead
        // and no serial dependency between the two table walks.
        let e0 = table[state0 as usize];
        let e1 = table[state1 as usize];
        out.push(e0.sym);
        out.push(e1.sym);
        let bits = r.read_bits(e0.nbits as u32 + e1.nbits as u32)?;
        state0 = e0.base as u32 + (bits & ((1u64 << e0.nbits) - 1)) as u32;
        state1 = e1.base as u32 + (bits >> e0.nbits) as u32;
        i += 2;
    }
    if i < raw_len {
        out.push(table[state0 as usize].sym);
    }
    Ok(())
}

/// Zstd's spread step: coprime with every power-of-two table size, and
/// scattering each symbol's slots roughly evenly.
#[inline]
fn spread_step(size: u32) -> u32 {
    (size >> 1) + (size >> 3) + 3
}

/// Adapts the table size to the input: roughly one table slot per four
/// input bytes, clamped so every distinct symbol gets a slot and the table
/// never exceeds [`MAX_TABLE_LOG`].
fn choose_table_log(len: usize, k: u32) -> u32 {
    let floor_log = usize::BITS - 1 - len.leading_zeros(); // len >= MIN_COMPRESS_LEN
    let ideal = floor_log.saturating_sub(2);
    let min_log = (32 - (k - 1).leading_zeros()).max(MIN_TABLE_LOG);
    ideal.clamp(min_log, MAX_TABLE_LOG)
}

/// Scales the histogram so it sums to `1 << table_log` with every present
/// symbol keeping a frequency of at least one (largest-remainder style:
/// floor-scale, then settle the residue against the largest entries).
fn normalize(hist: &[u32; 256], total: u64, table_log: u32) -> [u32; 256] {
    let size = 1u64 << table_log;
    let mut norm = [0u32; 256];
    let mut sum: i64 = 0;
    for s in 0..256 {
        if hist[s] > 0 {
            let scaled = ((hist[s] as u64 * size) / total).max(1) as u32;
            norm[s] = scaled;
            sum += scaled as i64;
        }
    }
    let mut diff = size as i64 - sum; // > 0: hand out slots; < 0: take back
    while diff != 0 {
        let (s, _) = norm
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f > 1 || (diff > 0 && f > 0))
            .max_by_key(|&(_, &f)| f)
            .expect("normalization always has an adjustable symbol");
        if diff > 0 {
            norm[s] += diff as u32;
            diff = 0;
        } else {
            let take = (-diff).min(norm[s] as i64 - 1);
            norm[s] -= take as u32;
            diff += take;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(input: &[u8]) -> Vec<u8> {
        let mut comp = Vec::new();
        compress(input, &mut comp);
        let mut out = Vec::new();
        let mut scratch = FseScratch::default();
        decompress_into(&comp, &mut out, &mut scratch).expect("decode");
        out
    }

    #[test]
    fn empty_and_tiny_inputs_round_trip() {
        assert_eq!(roundtrip(b""), b"");
        assert_eq!(roundtrip(b"a"), b"a");
        assert_eq!(roundtrip(b"hello world"), b"hello world");
    }

    #[test]
    fn single_symbol_run_compresses_to_header_only() {
        let input = vec![0x41u8; 100_000];
        let mut comp = Vec::new();
        compress(&input, &mut comp);
        assert!(comp.len() < 32, "run compressed to {} bytes", comp.len());
        assert_eq!(roundtrip(&input), input);
    }

    #[test]
    fn skewed_text_beats_stored() {
        let input: Vec<u8> = b"the quick brown fox jumps over the lazy dog "
            .repeat(200)
            .to_vec();
        let mut comp = Vec::new();
        compress(&input, &mut comp);
        assert!(comp.len() < input.len() * 7 / 10);
        assert_eq!(roundtrip(&input), input);
    }

    #[test]
    fn incompressible_input_falls_back_to_stored() {
        // A 256-byte permutation repeated keeps the histogram flat; coded
        // size ~= raw size, so stored mode must win.
        let input: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let mut comp = Vec::new();
        compress(&input, &mut comp);
        assert_eq!(comp[0], MODE_STORED);
        assert_eq!(roundtrip(&input), input);
    }

    #[test]
    fn all_byte_values_round_trip() {
        let mut input = Vec::new();
        for i in 0..=255u8 {
            input.extend(std::iter::repeat_n(i, 1 + (i as usize % 37)));
        }
        assert_eq!(roundtrip(&input), input);
    }

    #[test]
    fn truncated_streams_error() {
        // Two equiprobable symbols cost exactly one bit each, so removing
        // any real payload byte (the last 4 are padding) starves the
        // decoder and must surface as an error.
        let input = b"ab".repeat(160);
        let mut comp = Vec::new();
        compress(&input, &mut comp);
        assert_eq!(comp[0], MODE_TANS);
        let mut scratch = FseScratch::default();
        let mut out = Vec::new();
        for cut in 0..comp.len().saturating_sub(5) {
            assert!(
                decompress_into(&comp[..cut], &mut out, &mut scratch).is_err(),
                "truncation at {cut} did not error"
            );
        }
    }

    #[test]
    fn normalization_is_exact_for_adversarial_histograms() {
        // One dominant symbol plus many rare ones forces the residue logic.
        let mut hist = [0u32; 256];
        hist[0] = 1_000_000;
        for h in hist.iter_mut().take(20).skip(1) {
            *h = 1;
        }
        let total: u64 = hist.iter().map(|&f| f as u64).sum();
        for log in MIN_TABLE_LOG..=MAX_TABLE_LOG {
            let norm = normalize(&hist, total, log);
            let sum: u64 = norm.iter().map(|&f| f as u64).sum();
            assert_eq!(sum, 1u64 << log, "table_log {log}");
            for s in 0..256 {
                assert_eq!(hist[s] > 0, norm[s] > 0, "symbol {s} presence");
            }
        }
    }
}
