//! Property tests for the tANS and LZ4-style codecs: roundtrip identity on
//! arbitrary byte streams, and hardened decoders that error on corrupt or
//! truncated containers instead of panicking or over-allocating.

use proptest::prelude::*;
use rlz_fse::{lz4, tans, FseScratch};

/// Decoding garbage must never hand back a buffer wildly larger than the
/// input could honestly describe: a container of `n` bytes can claim at
/// most a vbyte-encoded raw length, but a *successful* decode must produce
/// exactly that many bytes, all reconstructed from the payload. Stored
/// mode bounds output by input size; coded modes can expand, but the
/// decoders validate counts before copying, so output stays equal to the
/// claimed length or the decode errors.
fn decode_is_sane(out: &[u8], claimed_ok: bool) {
    if !claimed_ok {
        assert!(out.len() <= 1 << 30, "implausible expansion: {}", out.len());
    }
}

proptest! {
    #[test]
    fn tans_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
        let mut comp = Vec::new();
        tans::compress(&data, &mut comp);
        let mut out = Vec::new();
        let mut scratch = FseScratch::default();
        tans::decompress_into(&comp, &mut out, &mut scratch).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn tans_roundtrips_skewed_streams(
        data in proptest::collection::vec(0u8..4, 0..4000),
    ) {
        // Tiny alphabets exercise the degenerate one-symbol table and the
        // low table-log clamp.
        let mut comp = Vec::new();
        tans::compress(&data, &mut comp);
        let mut out = Vec::new();
        let mut scratch = FseScratch::default();
        tans::decompress_into(&comp, &mut out, &mut scratch).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn lz4_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
        let mut comp = Vec::new();
        lz4::compress(&data, &mut comp);
        let mut out = Vec::new();
        lz4::decompress_into(&comp, &mut out).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn lz4_roundtrips_repetitive_streams(
        unit in proptest::collection::vec(any::<u8>(), 1..12),
        reps in 1usize..400,
    ) {
        // Periodic data drives the overlap-copy path (match offset shorter
        // than match length).
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        let mut comp = Vec::new();
        lz4::compress(&data, &mut comp);
        let mut out = Vec::new();
        lz4::decompress_into(&comp, &mut out).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn decoders_never_panic_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        let mut out = Vec::new();
        let mut scratch = FseScratch::default();
        let tans_ok = tans::decompress_into(&data, &mut out, &mut scratch).is_ok();
        decode_is_sane(&out, tans_ok);
        out.clear();
        let lz4_ok = lz4::decompress_into(&data, &mut out).is_ok();
        decode_is_sane(&out, lz4_ok);
    }

    #[test]
    fn truncated_containers_error_or_shrink(
        data in proptest::collection::vec(any::<u8>(), 64..2000),
        cut_pct in 5usize..95,
    ) {
        // Chopping the tail off a valid container must never yield the
        // original input back: either the decoder errors, or (for heavily
        // padded containers) it returns something, but never a silent
        // full-length wrong answer that equals the roundtrip.
        for which in 0..2 {
            let mut comp = Vec::new();
            if which == 0 {
                tans::compress(&data, &mut comp);
            } else {
                lz4::compress(&data, &mut comp);
            }
            let cut = comp.len() * cut_pct / 100;
            let truncated = &comp[..cut];
            let mut out = Vec::new();
            let mut scratch = FseScratch::default();
            let res = if which == 0 {
                tans::decompress_into(truncated, &mut out, &mut scratch)
            } else {
                lz4::decompress_into(truncated, &mut out)
            };
            if res.is_ok() {
                prop_assert!(out != data, "truncated container decoded to the original");
            }
        }
    }

    #[test]
    fn corrupt_headers_never_over_allocate(
        prefix in proptest::collection::vec(any::<u8>(), 1..12),
    ) {
        // A short buffer whose header claims a huge raw length must error
        // during validation, not reserve gigabytes up front. The decoders
        // reserve progressively (capped per step), so a failing decode on
        // a dozen input bytes leaves only a small buffer behind.
        let mut data = prefix.clone();
        // Force a worst-case vbyte raw-length claim right after the mode byte.
        data.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0x0F]);
        let mut out = Vec::new();
        let mut scratch = FseScratch::default();
        let _ = tans::decompress_into(&data, &mut out, &mut scratch);
        prop_assert!(out.capacity() <= 1 << 21, "tans reserved {}", out.capacity());
        let mut out = Vec::new();
        let _ = lz4::decompress_into(&data, &mut out);
        prop_assert!(out.capacity() <= 1 << 21, "lz4 reserved {}", out.capacity());
    }
}
