//! Longest-match queries against a suffix array: the `Refine` primitive of
//! Figure 1 in the paper.
//!
//! The RLZ factorizer repeatedly asks "what is the longest prefix of the
//! remaining document that occurs anywhere in the dictionary?". With the
//! dictionary's suffix array this is answered by maintaining an interval
//! `[lb, rb]` of suffixes that match the pattern read so far and narrowing it
//! with two binary searches per added character — `O(len · log m)` per query.

use crate::{PrefixIndex, SuffixArray};

/// A borrowing view that answers longest-match queries over `text` using its
/// suffix array.
#[derive(Debug, Clone, Copy)]
pub struct Matcher<'a> {
    text: &'a [u8],
    sa: &'a [u32],
}

impl<'a> Matcher<'a> {
    /// Creates a matcher. `sa` must be the suffix array of `text`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths disagree.
    pub fn new(text: &'a [u8], sa: &'a SuffixArray) -> Self {
        assert_eq!(
            text.len(),
            sa.len(),
            "suffix array does not match text length"
        );
        Matcher {
            text,
            sa: sa.as_slice(),
        }
    }

    /// The indexed text.
    #[inline]
    pub fn text(&self) -> &'a [u8] {
        self.text
    }

    /// Character of the suffix starting at `suffix`, `depth` positions in;
    /// `-1` when the suffix is shorter than `depth` (end-of-suffix sorts
    /// before every real byte).
    #[inline]
    fn char_at(&self, suffix: u32, depth: usize) -> i32 {
        match self.text.get(suffix as usize + depth) {
            Some(&b) => b as i32,
            None => -1,
        }
    }

    /// `Refine` from Figure 1: narrows the inclusive interval `[lb, rb]` of
    /// suffixes whose first `depth` characters already match the pattern so
    /// that they also match character `c` at offset `depth`.
    ///
    /// Returns the narrowed interval, or `None` when no suffix in the
    /// interval continues with `c` (the paper's "-1 / -1" outcome in
    /// Table 1).
    pub fn refine(&self, lb: usize, rb: usize, depth: usize, c: u8) -> Option<(usize, usize)> {
        debug_assert!(lb <= rb && rb < self.sa.len());
        let target = c as i32;
        // Lower bound: first index whose character at `depth` is >= c.
        let mut lo = lb;
        let mut hi = rb + 1;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.char_at(self.sa[mid], depth) < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let new_lb = lo;
        if new_lb > rb || self.char_at(self.sa[new_lb], depth) != target {
            return None;
        }
        // Upper bound: first index whose character at `depth` is > c.
        let mut hi = rb + 1;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.char_at(self.sa[mid], depth) <= target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Some((new_lb, lo - 1))
    }

    /// Variant of [`Matcher::refine`] that uses galloping (exponential)
    /// search from the interval edges instead of plain binary search.
    ///
    /// This is an ablation of the paper's design: when intervals shrink
    /// quickly, probing near the boundary first can beat bisection.
    pub fn refine_galloping(
        &self,
        lb: usize,
        rb: usize,
        depth: usize,
        c: u8,
    ) -> Option<(usize, usize)> {
        debug_assert!(lb <= rb && rb < self.sa.len());
        let target = c as i32;
        // Gallop for the lower bound from lb upward.
        let mut step = 1usize;
        let mut lo = lb;
        let hi = rb + 1;
        while lo < hi && self.char_at(self.sa[lo], depth) < target {
            let next = (lo + step).min(hi);
            if next == hi || self.char_at(self.sa[next.min(rb)], depth) >= target {
                // Bisect within (lo, next].
                let mut l = lo + 1;
                let mut h = next;
                while l < h {
                    let mid = l + (h - l) / 2;
                    if self.char_at(self.sa[mid], depth) < target {
                        l = mid + 1;
                    } else {
                        h = mid;
                    }
                }
                lo = l;
                break;
            }
            lo = next;
            step *= 2;
        }
        let new_lb = lo;
        if new_lb > rb || self.char_at(self.sa[new_lb], depth) != target {
            return None;
        }
        // Gallop for the upper bound from rb downward.
        let mut step = 1usize;
        let mut hi = rb;
        loop {
            if self.char_at(self.sa[hi], depth) <= target {
                break;
            }
            let next = hi.saturating_sub(step).max(new_lb);
            if self.char_at(self.sa[next], depth) <= target {
                // Bisect within [next, hi): first index > target.
                let mut l = next;
                let mut h = hi;
                while l < h {
                    let mid = l + (h - l) / 2;
                    if self.char_at(self.sa[mid], depth) <= target {
                        l = mid + 1;
                    } else {
                        h = mid;
                    }
                }
                hi = l - 1;
                break;
            }
            hi = next;
            step *= 2;
        }
        Some((new_lb, hi))
    }

    /// Longest prefix of `pattern` occurring anywhere in the indexed text.
    ///
    /// Returns `(position, length)`; `length == 0` means not even
    /// `pattern[0]` occurs in the text (the factorizer then emits a literal).
    pub fn longest_match(&self, pattern: &[u8]) -> (u32, u32) {
        self.longest_match_impl(pattern, false)
    }

    /// [`Matcher::longest_match`] using the galloping `Refine` variant.
    pub fn longest_match_galloping(&self, pattern: &[u8]) -> (u32, u32) {
        self.longest_match_impl(pattern, true)
    }

    /// [`Matcher::longest_match`] fast-pathed through a [`PrefixIndex`]:
    /// the index hands back the interval `Refine` would reach after its
    /// first `q` steps, so the widest binary searches are skipped entirely.
    ///
    /// Produces byte-identical results to [`Matcher::longest_match`] — the
    /// index interval is exactly the one the refine loop computes, so both
    /// the match position and length agree (the property the RLZ store
    /// relies on: indexed and plain builds emit identical factorizations).
    ///
    /// `index` must have been built over this matcher's text.
    pub fn longest_match_indexed(&self, index: &PrefixIndex, pattern: &[u8]) -> (u32, u32) {
        debug_assert_eq!(
            index.text_len(),
            self.text.len(),
            "prefix index built over a different text"
        );
        if self.sa.is_empty() || pattern.is_empty() {
            return (0, 0);
        }
        match index.lookup(pattern) {
            Some((lb, rb, depth)) => self.longest_match_from(pattern, lb, rb, depth, false),
            None => (0, 0),
        }
    }

    #[inline]
    fn longest_match_impl(&self, pattern: &[u8], gallop: bool) -> (u32, u32) {
        if self.sa.is_empty() || pattern.is_empty() {
            return (0, 0);
        }
        self.longest_match_from(pattern, 0, self.sa.len() - 1, 0, gallop)
    }

    /// The refine loop, resumable from any valid state: every suffix in
    /// `[lb, rb]` must already match `pattern[..depth]`.
    #[inline]
    fn longest_match_from(
        &self,
        pattern: &[u8],
        mut lb: usize,
        mut rb: usize,
        mut depth: usize,
        gallop: bool,
    ) -> (u32, u32) {
        while depth < pattern.len() {
            if lb == rb {
                // Single candidate left: extend by direct comparison, the
                // short-circuit in the paper's Factor().
                let start = self.sa[lb] as usize;
                let rest = &self.text[start + depth..];
                let extra = rest
                    .iter()
                    .zip(&pattern[depth..])
                    .take_while(|(a, b)| a == b)
                    .count();
                depth += extra;
                break;
            }
            let narrowed = if gallop {
                self.refine_galloping(lb, rb, depth, pattern[depth])
            } else {
                self.refine(lb, rb, depth, pattern[depth])
            };
            match narrowed {
                Some((l, r)) => {
                    lb = l;
                    rb = r;
                    depth += 1;
                }
                None => break,
            }
        }
        if depth == 0 {
            (0, 0)
        } else {
            (self.sa[lb], depth as u32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matcher_for(text: &[u8]) -> (SuffixArray, Vec<u8>) {
        (SuffixArray::build(text), text.to_vec())
    }

    #[test]
    fn paper_table1_refine_sequence() {
        // Table 1: searching x = bbaancabb in d = cabbaabba. The paper's
        // printed bounds are (5,8) -> (7,8) -> (8,8) -> (8,8) (1-based); the
        // third step there already drops the suffix "bba", which still
        // matches the 3-char prefix "bba" — our Refine keeps it until the
        // 4th character rules it out. Both derivations produce the same
        // factor, (3,4) 1-based = position 2, length 4 0-based: the string
        // "bbaa".
        let d = b"cabbaabba";
        let sa = SuffixArray::build(d);
        let m = Matcher::new(d, &sa);

        let (lb, rb) = m.refine(0, 8, 0, b'b').unwrap();
        assert_eq!((lb, rb), (4, 7)); // ba, baabba, bba, bbaabba
        let (lb, rb) = m.refine(lb, rb, 1, b'b').unwrap();
        assert_eq!((lb, rb), (6, 7)); // bba, bbaabba
        let (lb, rb) = m.refine(lb, rb, 2, b'a').unwrap();
        assert_eq!((lb, rb), (6, 7)); // both still match "bba"
        let (lb, rb) = m.refine(lb, rb, 3, b'a').unwrap();
        assert_eq!((lb, rb), (7, 7)); // only "bbaabba" continues with 'a'
        assert_eq!(m.refine(lb, rb, 4, b'n'), None);
        assert_eq!(m.longest_match(b"bbaancabb"), (2, 4));
        assert_eq!(&d[2..6], b"bbaa");
    }

    #[test]
    fn longest_match_whole_pattern() {
        let d = b"the quick brown fox";
        let (sa, text) = matcher_for(d);
        let m = Matcher::new(&text, &sa);
        let (pos, len) = m.longest_match(b"quick");
        assert_eq!(len, 5);
        assert_eq!(&d[pos as usize..pos as usize + 5], b"quick");
    }

    #[test]
    fn longest_match_absent_char() {
        let d = b"aaabbb";
        let (sa, text) = matcher_for(d);
        let m = Matcher::new(&text, &sa);
        assert_eq!(m.longest_match(b"zzz"), (0, 0));
    }

    #[test]
    fn longest_match_empty_pattern() {
        let d = b"abc";
        let (sa, text) = matcher_for(d);
        let m = Matcher::new(&text, &sa);
        assert_eq!(m.longest_match(b""), (0, 0));
    }

    #[test]
    fn longest_match_on_empty_text() {
        let sa = SuffixArray::build(b"");
        let m = Matcher::new(b"", &sa);
        assert_eq!(m.longest_match(b"abc"), (0, 0));
    }

    #[test]
    fn match_can_run_to_end_of_text() {
        let d = b"abcde";
        let (sa, text) = matcher_for(d);
        let m = Matcher::new(&text, &sa);
        // "cde" is a suffix of the text; the match must not read past it.
        assert_eq!(m.longest_match(b"cdefgh"), (2, 3));
    }

    /// Reference longest-match by brute force.
    fn brute_longest(text: &[u8], pattern: &[u8]) -> u32 {
        let mut best = 0u32;
        for start in 0..text.len() {
            let len = text[start..]
                .iter()
                .zip(pattern)
                .take_while(|(a, b)| a == b)
                .count() as u32;
            best = best.max(len);
        }
        best
    }

    #[test]
    fn agrees_with_brute_force() {
        let text = b"abracadabra arbor cadaver abracadabra";
        let (sa, owned) = matcher_for(text);
        let m = Matcher::new(&owned, &sa);
        let patterns: &[&[u8]] = &[
            b"abra",
            b"cadaver!",
            b"xyz",
            b"a",
            b"abracadabra abracadabra",
            b" arbor",
            b"r",
            b"ra arb",
        ];
        for p in patterns {
            let (pos, len) = m.longest_match(p);
            let (gpos, glen) = m.longest_match_galloping(p);
            assert_eq!(len, brute_longest(text, p), "pattern {:?}", p);
            assert_eq!(glen, len, "galloping length for {:?}", p);
            if len > 0 {
                assert_eq!(
                    &text[pos as usize..pos as usize + len as usize],
                    &p[..len as usize]
                );
                assert_eq!(
                    &text[gpos as usize..gpos as usize + glen as usize],
                    &p[..glen as usize]
                );
            }
        }
    }

    #[test]
    fn indexed_matches_plain_on_all_paths() {
        // Covers: jump to depth q, fallback to depth 1 (absent q-gram),
        // singleton short-circuit, absent first byte, pattern shorter
        // than q, and match running to end of text.
        let texts: &[&[u8]] = &[
            b"cabbaabba",
            b"abracadabra arbor cadaver abracadabra",
            b"aaaaaaa",
            b"x",
            b"",
        ];
        let patterns: &[&[u8]] = &[
            b"bbaancabb",
            b"abra",
            b"a",
            b"b",
            b"zz",
            b"az",
            b"aaaaaaaaaa",
            b"cadaver!",
            b"",
            b"ra arb",
        ];
        for text in texts {
            let sa = SuffixArray::build(text);
            let m = Matcher::new(text, &sa);
            for q in 1..=3usize {
                let idx = PrefixIndex::build(text, &sa, q);
                for p in patterns {
                    assert_eq!(
                        m.longest_match_indexed(&idx, p),
                        m.longest_match(p),
                        "text {:?} pattern {:?} q {}",
                        text,
                        p,
                        q
                    );
                }
            }
        }
    }

    #[test]
    fn galloping_refine_matches_plain_refine() {
        // Refine requires that [lb, rb] already matches the pattern up to
        // `depth`, so walk both variants through valid narrowing sequences.
        let text = b"mississippi river missions misses the mark";
        let sa = SuffixArray::build(text);
        let m = Matcher::new(text, &sa);
        let n = text.len();
        let patterns: &[&[u8]] = &[b"miss", b"issi", b"s th", b"river", b"zq", b"  ", b"mark!"];
        for p in patterns {
            let (mut lb, mut rb) = (0usize, n - 1);
            for (depth, &c) in p.iter().enumerate() {
                let plain = m.refine(lb, rb, depth, c);
                let gallop = m.refine_galloping(lb, rb, depth, c);
                assert_eq!(plain, gallop, "pattern {:?} depth {}", p, depth);
                match plain {
                    Some((l, r)) => {
                        lb = l;
                        rb = r;
                    }
                    None => break,
                }
            }
        }
    }
}
