//! Linear-time suffix array construction: SA-IS (Nong, Zhang & Chan, 2009).
//!
//! The public entry point is [`suffix_array`], which works on byte strings.
//! Internally the text is mapped to `u32` symbols shifted by one and a unique
//! zero sentinel is appended, so the recursive core can assume the classical
//! SA-IS precondition: the input ends with a unique, smallest symbol.

const EMPTY: u32 = u32::MAX;

/// Builds the suffix array of `text` in `O(n)` time.
pub(crate) fn suffix_array(text: &[u8]) -> Vec<u32> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }
    // Shift bytes by one so the appended 0 sentinel is strictly smallest.
    let mut s: Vec<u32> = Vec::with_capacity(n + 1);
    s.extend(text.iter().map(|&b| b as u32 + 1));
    s.push(0);
    let sa = sais(&s, 257);
    // sa[0] is the sentinel suffix; drop it.
    sa[1..].to_vec()
}

/// Core SA-IS over an integer string `s` with alphabet `0..k`.
///
/// Precondition: `s` ends with a unique smallest symbol (the sentinel).
fn sais(s: &[u32], k: usize) -> Vec<u32> {
    let n = s.len();
    debug_assert!(n >= 1);
    if n == 1 {
        return vec![0];
    }

    // --- Step 0: classify suffixes as S-type (true) or L-type (false). ---
    let mut is_s = vec![false; n];
    is_s[n - 1] = true;
    for i in (0..n - 1).rev() {
        is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
    }
    let is_lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];

    // Bucket sizes per symbol.
    let mut bkt = vec![0u32; k];
    for &c in s {
        bkt[c as usize] += 1;
    }

    let mut sa = vec![EMPTY; n];

    // --- Step 1: place LMS suffixes at bucket tails and induce. ---
    {
        let mut tails = bucket_tails(&bkt);
        for i in (1..n).rev() {
            if is_lms(i) {
                let c = s[i] as usize;
                tails[c] -= 1;
                sa[tails[c] as usize] = i as u32;
            }
        }
    }
    induce(s, &mut sa, &bkt, &is_s);

    // --- Step 2: compact the (now sorted) LMS substrings to the front. ---
    let mut n1 = 0;
    for i in 0..n {
        let p = sa[i];
        if p != EMPTY && is_lms(p as usize) {
            sa[n1] = p;
            n1 += 1;
        }
    }

    // --- Step 3: name LMS substrings, storing names at n1 + pos/2. ---
    for slot in sa[n1..].iter_mut() {
        *slot = EMPTY;
    }
    let mut names = 0u32;
    let mut prev = usize::MAX;
    for idx in 0..n1 {
        let pos = sa[idx] as usize;
        let mut differs = prev == usize::MAX;
        if !differs {
            let (i, j) = (pos, prev);
            let mut d = 0usize;
            loop {
                if s[i + d] != s[j + d] || is_s[i + d] != is_s[j + d] {
                    differs = true;
                    break;
                }
                if d > 0 && (is_lms(i + d) || is_lms(j + d)) {
                    differs = !(is_lms(i + d) && is_lms(j + d));
                    break;
                }
                d += 1;
            }
        }
        if differs {
            names += 1;
            prev = pos;
        }
        sa[n1 + pos / 2] = names - 1;
    }
    // Collect the reduced string (names in position order).
    let mut s1 = Vec::with_capacity(n1);
    for &name in &sa[n1..n] {
        if name != EMPTY {
            s1.push(name);
        }
    }
    debug_assert_eq!(s1.len(), n1);

    // --- Step 4: sort the reduced problem. ---
    let sa1: Vec<u32> = if (names as usize) < n1 {
        sais(&s1, names as usize)
    } else {
        // All names unique: the rank is the inverse permutation.
        let mut direct = vec![0u32; n1];
        for (i, &c) in s1.iter().enumerate() {
            direct[c as usize] = i as u32;
        }
        direct
    };

    // --- Step 5: place LMS suffixes in their final order and induce. ---
    let mut lms_pos = Vec::with_capacity(n1);
    for (i, _) in s.iter().enumerate().skip(1) {
        if is_lms(i) {
            lms_pos.push(i as u32);
        }
    }
    for slot in sa.iter_mut() {
        *slot = EMPTY;
    }
    {
        let mut tails = bucket_tails(&bkt);
        for &rank in sa1.iter().rev() {
            let p = lms_pos[rank as usize];
            let c = s[p as usize] as usize;
            tails[c] -= 1;
            sa[tails[c] as usize] = p;
        }
    }
    induce(s, &mut sa, &bkt, &is_s);
    sa
}

/// Induced sorting: scatter L-type suffixes left-to-right from bucket heads,
/// then S-type suffixes right-to-left from bucket tails.
fn induce(s: &[u32], sa: &mut [u32], bkt: &[u32], is_s: &[bool]) {
    let n = s.len();
    let mut heads = bucket_heads(bkt);
    for i in 0..n {
        let j = sa[i];
        if j != EMPTY && j > 0 {
            let p = (j - 1) as usize;
            if !is_s[p] {
                let c = s[p] as usize;
                sa[heads[c] as usize] = p as u32;
                heads[c] += 1;
            }
        }
    }
    let mut tails = bucket_tails(bkt);
    for i in (0..n).rev() {
        let j = sa[i];
        if j != EMPTY && j > 0 {
            let p = (j - 1) as usize;
            if is_s[p] {
                let c = s[p] as usize;
                tails[c] -= 1;
                sa[tails[c] as usize] = p as u32;
            }
        }
    }
}

fn bucket_heads(bkt: &[u32]) -> Vec<u32> {
    let mut heads = Vec::with_capacity(bkt.len());
    let mut sum = 0u32;
    for &b in bkt {
        heads.push(sum);
        sum += b;
    }
    heads
}

fn bucket_tails(bkt: &[u32]) -> Vec<u32> {
    let mut tails = Vec::with_capacity(bkt.len());
    let mut sum = 0u32;
    for &b in bkt {
        sum += b;
        tails.push(sum);
    }
    tails
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn matches_naive_on_periodic_inputs() {
        for period in 1..6usize {
            let pat: Vec<u8> = (0..period).map(|i| b'a' + i as u8).collect();
            let text: Vec<u8> = pat.iter().cycle().take(97).copied().collect();
            assert_eq!(
                suffix_array(&text),
                naive::suffix_array(&text).into_inner(),
                "period {period}"
            );
        }
    }

    #[test]
    fn matches_naive_on_pseudorandom_bytes() {
        // Simple xorshift so the test needs no external RNG.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in [2usize, 3, 10, 100, 1000] {
            for alphabet in [2u64, 4, 16, 256] {
                let text: Vec<u8> = (0..len).map(|_| (next() % alphabet) as u8).collect();
                assert_eq!(
                    suffix_array(&text),
                    naive::suffix_array(&text).into_inner(),
                    "len={len} alphabet={alphabet}"
                );
            }
        }
    }

    #[test]
    fn handles_embedded_zero_bytes() {
        let text = b"\x00abc\x00abc\x00";
        assert_eq!(suffix_array(text), naive::suffix_array(text).into_inner());
    }
}
