//! Suffix array construction and pattern matching for relative Lempel-Ziv
//! factorization.
//!
//! This crate provides the string-indexing substrate used by the RLZ
//! compressor of Hoobin, Puglisi & Zobel (PVLDB 2011):
//!
//! * [`SuffixArray`] — a suffix array built with the linear-time SA-IS
//!   algorithm (Nong, Zhang & Chan, 2009). The paper (§3.2) computes the RLZ
//!   factorization in `O(n log m)` time using the suffix array of the
//!   dictionary; SA-IS keeps construction itself at `O(m)`.
//! * [`Matcher`] — the `Refine` operation from Figure 1 of the paper:
//!   successive binary searches that narrow a suffix-array interval while a
//!   pattern is extended one character at a time, yielding the longest match
//!   of a pattern prefix anywhere in the indexed text.
//! * [`PrefixIndex`] — a q-gram prefix-interval table (default `q = 2`)
//!   that maps the first `q` bytes of a pattern straight to its suffix-array
//!   interval, so [`Matcher::longest_match_indexed`] skips the `q` widest
//!   `Refine` binary searches — the dominant cost of RLZ factorization. The
//!   table holds `O(σ^q)` interval entries (8 bytes each): 2 KiB at `q = 1`,
//!   512 KiB at `q = 2`, 128 MiB at `q = 3`, independent of the text size.
//!   A 256-entry first-byte table covers patterns shorter than `q` and
//!   leading q-grams absent from the text. Results are byte-identical to
//!   the un-indexed matcher.
//! * [`lcp`] — longest-common-prefix arrays (Kasai's algorithm), used by the
//!   dictionary-usage statistics and by tests.
//! * [`naive`] — an obviously-correct `O(n² log n)` reference construction,
//!   used to validate SA-IS in tests and property tests.
//!
//! # Example
//!
//! ```
//! use rlz_suffix::{SuffixArray, Matcher};
//!
//! // The dictionary from Table 1 of the paper.
//! let d = b"cabbaabba";
//! let sa = SuffixArray::build(d);
//! let m = Matcher::new(d, &sa);
//!
//! // Longest prefix of "bbaancabb" that occurs in d: "bbaa" at offset 2.
//! let (pos, len) = m.longest_match(b"bbaancabb");
//! assert_eq!((pos, len), (2, 4));
//! assert_eq!(&d[pos as usize..pos as usize + len as usize], b"bbaa");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lcp;
mod matcher;
pub mod naive;
mod prefix;
mod sais;

pub use matcher::Matcher;
pub use prefix::{PrefixIndex, MAX_Q};

/// A suffix array over a byte string.
///
/// Stores the array of suffix start positions in lexicographic order of the
/// corresponding suffixes. Construction uses SA-IS and runs in `O(n)` time and
/// `O(n)` extra space (indices are `u32`, so texts are limited to `u32::MAX`
/// bytes — far beyond any dictionary the RLZ scheme would hold in memory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuffixArray {
    sa: Vec<u32>,
}

impl SuffixArray {
    /// Builds the suffix array of `text` with SA-IS.
    ///
    /// # Panics
    ///
    /// Panics if `text.len() >= u32::MAX as usize` (the index type would
    /// overflow).
    pub fn build(text: &[u8]) -> Self {
        assert!(
            (text.len() as u64) < u32::MAX as u64,
            "text too large for u32 suffix array indices"
        );
        SuffixArray {
            sa: sais::suffix_array(text),
        }
    }

    /// Number of suffixes (equals the text length).
    #[inline]
    pub fn len(&self) -> usize {
        self.sa.len()
    }

    /// True when built over the empty text.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sa.is_empty()
    }

    /// The raw suffix array: `sa[i]` is the start of the `i`-th smallest
    /// suffix.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.sa
    }

    /// Constructs a `SuffixArray` from a precomputed permutation.
    ///
    /// Intended for deserialization paths; `debug_assert`s that the input is
    /// a permutation of `0..len`.
    pub fn from_parts(sa: Vec<u32>) -> Self {
        #[cfg(debug_assertions)]
        {
            let mut seen = vec![false; sa.len()];
            for &s in &sa {
                assert!(!std::mem::replace(&mut seen[s as usize], true));
            }
        }
        SuffixArray { sa }
    }

    /// Consumes the structure, returning the underlying index vector.
    pub fn into_inner(self) -> Vec<u32> {
        self.sa
    }

    /// Heap bytes held by the array — the memory-accounting input for
    /// build-time RSS budgets (the suffix array dominates a resident
    /// dictionary at 4 bytes per text byte).
    pub fn heap_bytes(&self) -> usize {
        self.sa.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(text: &[u8]) {
        let fast = SuffixArray::build(text);
        let slow = naive::suffix_array(text);
        assert_eq!(fast.as_slice(), slow.as_slice(), "text={:?}", text);
    }

    #[test]
    fn empty_text() {
        let sa = SuffixArray::build(b"");
        assert!(sa.is_empty());
        assert_eq!(sa.len(), 0);
    }

    #[test]
    fn single_byte() {
        let sa = SuffixArray::build(b"x");
        assert_eq!(sa.as_slice(), &[0]);
    }

    #[test]
    fn paper_table1_dictionary() {
        // Table 1 of the paper prints the row "SA_d: 9 4 8 6 2 3 7 5 1",
        // which is in fact the *inverse* suffix array (the rank of each text
        // position): the table's own sorted-suffix listing (a, aabba, abba,
        // abbaabba, ba, baabba, bba, bbaabba, cabbaabba) corresponds to the
        // 1-based SA [9,5,6,2,8,4,7,3,1], i.e. 0-based [8,4,5,1,7,3,6,2,0].
        let d = b"cabbaabba";
        let sa = SuffixArray::build(d);
        assert_eq!(sa.as_slice(), &[8, 4, 5, 1, 7, 3, 6, 2, 0]);
        // And the printed row is the inverse permutation of it.
        let mut rank = vec![0u32; d.len()];
        for (i, &s) in sa.as_slice().iter().enumerate() {
            rank[s as usize] = i as u32 + 1; // 1-based as printed
        }
        assert_eq!(rank, vec![9, 4, 8, 6, 2, 3, 7, 5, 1]);
    }

    #[test]
    fn classic_strings() {
        check(b"banana");
        check(b"mississippi");
        check(b"abracadabra");
        check(b"");
        check(b"a");
        check(b"aa");
        check(b"ab");
        check(b"ba");
        check(b"aaaaaaaaaa");
        check(b"abababab");
        check(b"zyxwvutsrq");
    }

    #[test]
    fn all_bytes() {
        let text: Vec<u8> = (0..=255u8).collect();
        check(&text);
        let rev: Vec<u8> = (0..=255u8).rev().collect();
        check(&rev);
    }

    #[test]
    fn binary_alphabet_exhaustive_short() {
        // Every binary string up to length 10.
        for len in 0..=10usize {
            for bits in 0..(1u32 << len) {
                let text: Vec<u8> = (0..len)
                    .map(|i| if bits >> i & 1 == 1 { b'b' } else { b'a' })
                    .collect();
                check(&text);
            }
        }
    }

    #[test]
    fn from_parts_roundtrip() {
        let sa = SuffixArray::build(b"mississippi");
        let v = sa.clone().into_inner();
        let sa2 = SuffixArray::from_parts(v);
        assert_eq!(sa, sa2);
    }

    #[test]
    #[should_panic]
    fn from_parts_rejects_non_permutation() {
        // Only enforced in debug builds, which tests are.
        let _ = SuffixArray::from_parts(vec![0, 0, 1]);
    }
}
