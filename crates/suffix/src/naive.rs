//! Obviously-correct reference suffix array construction for testing.
//!
//! Sorts suffix start positions with the standard library's comparison sort;
//! `O(n² log n)` worst case, fine for the short inputs used in tests and
//! property tests.

use crate::SuffixArray;

/// Builds a suffix array by direct suffix comparison.
pub fn suffix_array(text: &[u8]) -> SuffixArray {
    let mut sa: Vec<u32> = (0..text.len() as u32).collect();
    sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    SuffixArray::from_parts(sa)
}

#[cfg(test)]
mod tests {
    #[test]
    fn banana() {
        let sa = super::suffix_array(b"banana");
        // suffixes sorted: a, ana, anana, banana, na, nana
        assert_eq!(sa.as_slice(), &[5, 3, 1, 0, 4, 2]);
    }
}
