//! A q-gram prefix-interval index over a suffix array.
//!
//! The RLZ factorizer's `Refine` loop ([`crate::Matcher`]) restarts every
//! longest-match query at the full interval `[0, m-1]` and pays one whole
//! array binary search per character until the interval narrows. The first
//! few `Refine` steps are by far the most expensive: they bisect the widest
//! intervals, touching `O(log m)` cache-cold suffix-array entries each.
//!
//! [`PrefixIndex`] removes them. It precomputes, for every q-gram, the
//! suffix-array interval of the suffixes starting with that q-gram — the
//! exact interval `Refine` would reach after `q` steps. A longest-match
//! query then starts directly at depth `q`, skipping the `q` widest binary
//! searches. A 256-entry first-byte table serves as fallback for patterns
//! shorter than `q` and for patterns whose leading q-gram does not occur in
//! the text (the longest match, if any, is then shorter than `q`, and the
//! plain refine loop resumes from depth 1).
//!
//! Memory cost: `σ^q + σ` interval entries of 8 bytes, i.e. 2 KiB for
//! `q = 1`, 512 KiB for the default `q = 2`, and 128 MiB for `q = 3` —
//! independent of the text size. Construction is a single `O(m)` sweep of
//! the suffix array.

use crate::SuffixArray;

/// Largest supported q (the table has `256^q` entries; `q = 3` already
/// costs 128 MiB).
pub const MAX_Q: usize = 3;

/// Sentinel lower bound marking an absent q-gram.
const EMPTY: u32 = u32::MAX;

/// An inclusive suffix-array interval, `lb == EMPTY` when no suffix starts
/// with the gram.
#[derive(Debug, Clone, Copy)]
struct Interval {
    lb: u32,
    rb: u32,
}

const NO_SUFFIX: Interval = Interval { lb: EMPTY, rb: 0 };

/// Maps the first `q` bytes of a pattern to the suffix-array interval of
/// suffixes sharing that prefix, letting longest-match queries skip the
/// `q` widest `Refine` binary searches.
///
/// Build once per indexed text and share freely: lookups take `&self` and
/// the index is immutable, `Send` and `Sync`.
#[derive(Clone)]
pub struct PrefixIndex {
    q: usize,
    /// Length of the text the index was built over (sanity binding to the
    /// matcher it is used with).
    text_len: usize,
    /// `256^q` intervals, keyed by the big-endian integer value of the
    /// q-gram. Empty (capacity 0) when `q == 1`: `first` already is the
    /// 1-gram table.
    table: Vec<Interval>,
    /// 256 first-byte intervals — the depth-1 fallback.
    first: Vec<Interval>,
}

impl PrefixIndex {
    /// Builds the index for `text` whose suffix array is `sa`.
    ///
    /// # Panics
    ///
    /// Panics if `sa` was not built over a text of `text.len()` bytes or if
    /// `q` is outside `1..=MAX_Q`.
    pub fn build(text: &[u8], sa: &SuffixArray, q: usize) -> Self {
        assert!(
            (1..=MAX_Q).contains(&q),
            "prefix index q must be in 1..={MAX_Q}, got {q}"
        );
        assert_eq!(
            text.len(),
            sa.len(),
            "suffix array does not match text length"
        );
        let mut first = vec![NO_SUFFIX; 256];
        let mut table = if q >= 2 {
            vec![NO_SUFFIX; 1usize << (8 * q)]
        } else {
            Vec::new()
        };
        // The suffix array is sorted, so all suffixes sharing a prefix are
        // contiguous: one forward sweep records each gram's first and last
        // rank. Suffixes shorter than the gram are excluded, exactly as
        // `Refine` excludes them (end-of-suffix never matches a byte).
        for (rank, &s) in sa.as_slice().iter().enumerate() {
            let suffix = &text[s as usize..];
            let Some(&b0) = suffix.first() else { continue };
            grow(&mut first[b0 as usize], rank as u32);
            if q >= 2 && suffix.len() >= q {
                let key = suffix[..q].iter().fold(0usize, |k, &b| k << 8 | b as usize);
                grow(&mut table[key], rank as u32);
            }
        }
        PrefixIndex {
            q,
            text_len: text.len(),
            table,
            first,
        }
    }

    /// The configured q-gram length.
    #[inline]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Length of the text this index was built over.
    #[inline]
    pub fn text_len(&self) -> usize {
        self.text_len
    }

    /// Heap footprint of the interval tables in bytes.
    pub fn heap_bytes(&self) -> usize {
        (self.table.capacity() + self.first.capacity()) * std::mem::size_of::<Interval>()
    }

    /// Starting state for a longest-match query on `pattern`: an inclusive
    /// suffix-array interval `(lb, rb)` whose suffixes all share
    /// `pattern[..depth]`, and that `depth`.
    ///
    /// `None` means not even `pattern[0]` occurs in the text (or the
    /// pattern is empty): the longest match has length 0.
    #[inline]
    pub fn lookup(&self, pattern: &[u8]) -> Option<(usize, usize, usize)> {
        let &b0 = pattern.first()?;
        if self.q >= 2 && pattern.len() >= self.q {
            let key = pattern[..self.q]
                .iter()
                .fold(0usize, |k, &b| k << 8 | b as usize);
            let iv = self.table[key];
            if iv.lb != EMPTY {
                return Some((iv.lb as usize, iv.rb as usize, self.q));
            }
            // The leading q-gram is absent: any match is shorter than q.
            // Resume the refine loop from the first-byte interval.
        }
        let iv = self.first[b0 as usize];
        (iv.lb != EMPTY).then_some((iv.lb as usize, iv.rb as usize, 1))
    }
}

// The derived impl would dump all 256^q interval entries; summarize
// instead (a Dictionary embeds this and derives Debug itself).
impl std::fmt::Debug for PrefixIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefixIndex")
            .field("q", &self.q)
            .field("text_len", &self.text_len)
            .field("heap_bytes", &self.heap_bytes())
            .finish_non_exhaustive()
    }
}

#[inline]
fn grow(iv: &mut Interval, rank: u32) {
    if iv.lb == EMPTY {
        iv.lb = rank;
    }
    iv.rb = rank;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matcher;

    fn index_for(text: &[u8], q: usize) -> (SuffixArray, PrefixIndex) {
        let sa = SuffixArray::build(text);
        let idx = PrefixIndex::build(text, &sa, q);
        (sa, idx)
    }

    #[test]
    fn intervals_match_refine_on_paper_dictionary() {
        // d = cabbaabba, SA = [8,4,5,1,7,3,6,2,0] (Table 1 of the paper).
        let d = b"cabbaabba";
        let (sa, idx) = index_for(d, 2);
        let m = Matcher::new(d, &sa);
        for a in 0u8..=255 {
            for b in 0u8..=255 {
                let expect = m
                    .refine(0, d.len() - 1, 0, a)
                    .and_then(|(lb, rb)| m.refine(lb, rb, 1, b));
                let got = match idx.lookup(&[a, b]) {
                    Some((lb, rb, 2)) => Some((lb, rb)),
                    Some((_, _, _)) | None => None,
                };
                assert_eq!(got, expect, "gram {:?}", [a as char, b as char]);
            }
        }
    }

    #[test]
    fn first_byte_fallback_for_short_patterns() {
        let d = b"cabbaabba";
        let (sa, idx) = index_for(d, 2);
        let m = Matcher::new(d, &sa);
        for a in 0u8..=255 {
            let expect = m.refine(0, d.len() - 1, 0, a);
            let got = idx.lookup(&[a]).map(|(lb, rb, depth)| {
                assert_eq!(depth, 1);
                (lb, rb)
            });
            assert_eq!(got, expect, "byte {a}");
        }
    }

    #[test]
    fn absent_gram_falls_back_to_first_byte() {
        // "bz" never occurs but 'b' does: lookup must return the 'b'
        // interval at depth 1, not None.
        let d = b"cabbaabba";
        let (_, idx) = index_for(d, 2);
        let (lb, rb, depth) = idx.lookup(b"bz").unwrap();
        assert_eq!(depth, 1);
        assert_eq!((lb, rb), (4, 7)); // ba, baabba, bba, bbaabba
        assert_eq!(idx.lookup(b"zz"), None);
        assert_eq!(idx.lookup(b""), None);
    }

    #[test]
    fn q1_uses_only_the_first_byte_table() {
        let d = b"mississippi";
        let (_, idx) = index_for(d, 1);
        assert_eq!(idx.heap_bytes(), 256 * std::mem::size_of::<Interval>());
        let (lb, rb, depth) = idx.lookup(b"issi").unwrap();
        assert_eq!(depth, 1);
        assert!(lb <= rb);
    }

    #[test]
    fn empty_text_has_no_intervals() {
        let (_, idx) = index_for(b"", 2);
        assert_eq!(idx.lookup(b"a"), None);
        assert_eq!(idx.lookup(b"ab"), None);
    }

    #[test]
    fn suffixes_shorter_than_q_are_excluded() {
        // Text "ba": suffix "a" (rank 0) must not appear in any 2-gram
        // interval, only in the first-byte table.
        let d = b"ba";
        let (_, idx) = index_for(d, 2);
        assert_eq!(idx.lookup(b"ba").map(|t| t.2), Some(2));
        // Pattern "ab": 2-gram "ab" absent, falls back to 'a' at depth 1.
        let (lb, rb, depth) = idx.lookup(b"ab").unwrap();
        assert_eq!((lb, rb, depth), (0, 0, 1));
    }

    #[test]
    #[should_panic]
    fn rejects_q_zero() {
        let sa = SuffixArray::build(b"abc");
        let _ = PrefixIndex::build(b"abc", &sa, 0);
    }

    #[test]
    #[should_panic]
    fn rejects_oversized_q() {
        let sa = SuffixArray::build(b"abc");
        let _ = PrefixIndex::build(b"abc", &sa, MAX_Q + 1);
    }
}
