//! Longest-common-prefix (LCP) arrays via Kasai's algorithm.
//!
//! `lcp[i]` is the length of the longest common prefix of the suffixes at
//! `sa[i-1]` and `sa[i]` (`lcp[0] == 0` by convention). The RLZ dictionary
//! pruning analysis uses LCP values to reason about intra-dictionary
//! redundancy; tests use them to cross-check the suffix array order.

use crate::SuffixArray;

/// Computes the LCP array of `text` given its suffix array, in `O(n)`.
pub fn lcp_array(text: &[u8], sa: &SuffixArray) -> Vec<u32> {
    let n = text.len();
    assert_eq!(n, sa.len(), "suffix array does not match text");
    let sa = sa.as_slice();
    let mut rank = vec![0u32; n];
    for (i, &s) in sa.iter().enumerate() {
        rank[s as usize] = i as u32;
    }
    let mut lcp = vec![0u32; n];
    let mut h = 0usize;
    for i in 0..n {
        let r = rank[i] as usize;
        if r > 0 {
            let j = sa[r - 1] as usize;
            while i + h < n && j + h < n && text[i + h] == text[j + h] {
                h += 1;
            }
            lcp[r] = h as u32;
            h = h.saturating_sub(1);
        } else {
            h = 0;
        }
    }
    lcp
}

/// Average LCP value — a quick scalar measure of self-similarity of a text.
///
/// Returns 0.0 for texts shorter than two characters.
pub fn mean_lcp(text: &[u8], sa: &SuffixArray) -> f64 {
    if text.len() < 2 {
        return 0.0;
    }
    let lcp = lcp_array(text, sa);
    lcp[1..].iter().map(|&v| v as f64).sum::<f64>() / (lcp.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_lcp(a: &[u8], b: &[u8]) -> u32 {
        a.iter().zip(b).take_while(|(x, y)| x == y).count() as u32
    }

    #[test]
    fn banana_lcp() {
        let text = b"banana";
        let sa = SuffixArray::build(text);
        // sa = [5,3,1,0,4,2]: a, ana, anana, banana, na, nana
        assert_eq!(lcp_array(text, &sa), vec![0, 1, 3, 0, 0, 2]);
    }

    #[test]
    fn matches_brute_force() {
        let text = b"abracadabra abracadabra";
        let sa = SuffixArray::build(text);
        let lcp = lcp_array(text, &sa);
        let s = sa.as_slice();
        for i in 1..s.len() {
            assert_eq!(
                lcp[i],
                brute_lcp(&text[s[i - 1] as usize..], &text[s[i] as usize..]),
                "position {i}"
            );
        }
    }

    #[test]
    fn empty_and_singleton() {
        let sa = SuffixArray::build(b"");
        assert!(lcp_array(b"", &sa).is_empty());
        assert_eq!(mean_lcp(b"", &sa), 0.0);
        let sa = SuffixArray::build(b"q");
        assert_eq!(lcp_array(b"q", &sa), vec![0]);
        assert_eq!(mean_lcp(b"q", &sa), 0.0);
    }

    #[test]
    fn uniform_text_has_descending_runs() {
        let text = b"aaaa";
        let sa = SuffixArray::build(text);
        // Suffixes sorted: a, aa, aaa, aaaa -> lcp 0,1,2,3
        assert_eq!(lcp_array(text, &sa), vec![0, 1, 2, 3]);
        assert!((mean_lcp(text, &sa) - 2.0).abs() < 1e-9);
    }
}
