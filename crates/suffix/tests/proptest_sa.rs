//! Property tests: SA-IS agrees with the naive construction, and the matcher
//! finds true longest matches.

use proptest::prelude::*;
use rlz_suffix::{naive, Matcher, PrefixIndex, SuffixArray};

fn brute_longest(text: &[u8], pattern: &[u8]) -> u32 {
    (0..text.len())
        .map(|s| {
            text[s..]
                .iter()
                .zip(pattern)
                .take_while(|(a, b)| a == b)
                .count() as u32
        })
        .max()
        .unwrap_or(0)
}

proptest! {
    #[test]
    fn sais_matches_naive_small_alphabet(text in proptest::collection::vec(0u8..4, 0..300)) {
        let fast = SuffixArray::build(&text);
        let slow = naive::suffix_array(&text);
        prop_assert_eq!(fast.as_slice(), slow.as_slice());
    }

    #[test]
    fn sais_matches_naive_full_alphabet(text in proptest::collection::vec(any::<u8>(), 0..300)) {
        let fast = SuffixArray::build(&text);
        let slow = naive::suffix_array(&text);
        prop_assert_eq!(fast.as_slice(), slow.as_slice());
    }

    #[test]
    fn suffix_array_is_sorted(text in proptest::collection::vec(0u8..8, 1..200)) {
        let sa = SuffixArray::build(&text);
        let s = sa.as_slice();
        for w in s.windows(2) {
            prop_assert!(text[w[0] as usize..] < text[w[1] as usize..]);
        }
    }

    #[test]
    fn longest_match_is_maximal(
        text in proptest::collection::vec(0u8..6, 1..200),
        pattern in proptest::collection::vec(0u8..6, 0..64),
    ) {
        let sa = SuffixArray::build(&text);
        let m = Matcher::new(&text, &sa);
        let (pos, len) = m.longest_match(&pattern);
        prop_assert_eq!(len, brute_longest(&text, &pattern));
        if len > 0 {
            prop_assert_eq!(
                &text[pos as usize..pos as usize + len as usize],
                &pattern[..len as usize]
            );
        }
        let (gpos, glen) = m.longest_match_galloping(&pattern);
        prop_assert_eq!(glen, len);
        if glen > 0 {
            prop_assert_eq!(
                &text[gpos as usize..gpos as usize + glen as usize],
                &pattern[..glen as usize]
            );
        }
    }

    #[test]
    fn indexed_longest_match_agrees_with_plain_and_brute(
        text in proptest::collection::vec(0u8..6, 0..200),
        // Full byte range so patterns regularly contain bytes absent from
        // the text, and lengths 0..4 so patterns shorter than q occur for
        // every q.
        pattern in proptest::collection::vec(any::<u8>(), 0..64),
        short in proptest::collection::vec(0u8..6, 0..4),
        q in 1usize..=3,
    ) {
        let sa = SuffixArray::build(&text);
        let m = Matcher::new(&text, &sa);
        let idx = PrefixIndex::build(&text, &sa, q);
        for p in [&pattern, &short] {
            let (pos, len) = m.longest_match_indexed(&idx, p);
            // Byte-identical to the un-indexed matcher: same position,
            // same length (the factorization-equality guarantee).
            prop_assert_eq!((pos, len), m.longest_match(p), "q={} pattern={:?}", q, p);
            // And truly maximal per the brute-force oracle.
            prop_assert_eq!(len, brute_longest(&text, p));
            if len > 0 {
                prop_assert_eq!(
                    &text[pos as usize..pos as usize + len as usize],
                    &p[..len as usize]
                );
            }
        }
    }

    #[test]
    fn lcp_matches_definition(text in proptest::collection::vec(0u8..4, 2..150)) {
        let sa = SuffixArray::build(&text);
        let lcp = rlz_suffix::lcp::lcp_array(&text, &sa);
        let s = sa.as_slice();
        for i in 1..s.len() {
            let a = &text[s[i - 1] as usize..];
            let b = &text[s[i] as usize..];
            let expect = a.iter().zip(b).take_while(|(x, y)| x == y).count() as u32;
            prop_assert_eq!(lcp[i], expect);
        }
    }
}
