//! Synthetic document collections and access-pattern workloads.
//!
//! The paper evaluates on GOV2 (426 GB web crawl, ~25 M docs, ~18 KB/doc)
//! and an English Wikipedia snapshot (256 GB, ~6 M docs, ~45 KB/doc),
//! accessed through two request streams: a sequential scan and the ranked
//! output of real queries ("query log"). None of those artifacts can ship
//! with this repository, so this crate generates collections that reproduce
//! the *properties* the paper's measurements depend on:
//!
//! * **global redundancy** — per-site boilerplate shared by documents that
//!   are far apart in crawl order (invisible to a 32 KB zlib window,
//!   capturable by a sampled RLZ dictionary or a large lzma window);
//! * **local redundancy** — repeated phrases inside a document;
//! * **Zipfian text** — natural-language-like word frequencies;
//! * **near-duplicates** — mirrored pages;
//! * **URL order vs crawl order** — sorting by URL clusters same-site pages
//!   (the Ferragina–Manzini effect of §3.5).
//!
//! See `DESIGN.md` ("Substitutions") for the fidelity argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod genome;
pub mod text;
pub mod web;

pub use web::{generate_web, CollectionStyle, WebConfig};

/// Metadata for one document inside a [`Collection`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocEntry {
    /// Byte offset of the document in the collection buffer.
    pub offset: usize,
    /// Document length in bytes.
    pub len: usize,
    /// Source URL (used for URL-order sorting).
    pub url: String,
}

/// A document collection: one contiguous buffer plus per-document extents.
#[derive(Debug, Clone, Default)]
pub struct Collection {
    /// Concatenated document bytes.
    pub data: Vec<u8>,
    /// Document table in storage order.
    pub docs: Vec<DocEntry>,
}

impl Collection {
    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Total size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.data.len()
    }

    /// Bytes of document `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn doc(&self, id: usize) -> &[u8] {
        let e = &self.docs[id];
        &self.data[e.offset..e.offset + e.len]
    }

    /// Iterates over documents in storage order.
    pub fn iter_docs(&self) -> impl Iterator<Item = &[u8]> + '_ {
        self.docs
            .iter()
            .map(|e| &self.data[e.offset..e.offset + e.len])
    }

    /// Appends a document.
    pub fn push(&mut self, url: String, body: &[u8]) {
        let offset = self.data.len();
        self.data.extend_from_slice(body);
        self.docs.push(DocEntry {
            offset,
            len: body.len(),
            url,
        });
    }

    /// Returns a copy of the collection with documents sorted by URL — the
    /// URL-ordering experiment of §3.5 (Tables 5 and 7). Sorting clusters
    /// pages of the same site, which moves cross-document redundancy inside
    /// the reach of small compression windows.
    pub fn url_sorted(&self) -> Collection {
        let mut order: Vec<usize> = (0..self.docs.len()).collect();
        order.sort_by(|&a, &b| self.docs[a].url.cmp(&self.docs[b].url));
        let mut out = Collection {
            data: Vec::with_capacity(self.data.len()),
            docs: Vec::with_capacity(self.docs.len()),
        };
        for id in order {
            let e = &self.docs[id];
            out.push(e.url.clone(), &self.data[e.offset..e.offset + e.len]);
        }
        out
    }

    /// Truncates to the documents whose bytes fall entirely within the first
    /// `percent` of the collection (used by the Table 10 prefix sweep).
    pub fn prefix_by_percent(&self, percent: u32) -> Collection {
        assert!((1..=100).contains(&percent));
        let limit = (self.data.len() as u64 * percent as u64 / 100) as usize;
        let mut out = Collection::default();
        for e in &self.docs {
            if e.offset + e.len <= limit {
                out.push(e.url.clone(), &self.data[e.offset..e.offset + e.len]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Collection {
        let mut c = Collection::default();
        c.push("http://b.example/2".into(), b"second doc");
        c.push("http://a.example/1".into(), b"first doc");
        c.push("http://a.example/0".into(), b"zeroth doc");
        c
    }

    #[test]
    fn push_and_doc_access() {
        let c = tiny();
        assert_eq!(c.num_docs(), 3);
        assert_eq!(c.doc(0), b"second doc");
        assert_eq!(c.doc(2), b"zeroth doc");
        assert_eq!(c.total_bytes(), 29);
    }

    #[test]
    fn url_sort_reorders_documents() {
        let sorted = tiny().url_sorted();
        assert_eq!(sorted.docs[0].url, "http://a.example/0");
        assert_eq!(sorted.doc(0), b"zeroth doc");
        assert_eq!(sorted.docs[2].url, "http://b.example/2");
        // Content is preserved as a multiset.
        let mut a: Vec<Vec<u8>> = tiny().iter_docs().map(|d| d.to_vec()).collect();
        let mut b: Vec<Vec<u8>> = sorted.iter_docs().map(|d| d.to_vec()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn prefix_by_percent_respects_byte_limit() {
        let c = tiny();
        let half = c.prefix_by_percent(50);
        assert_eq!(half.num_docs(), 1); // only the first 10-byte doc fits 14 bytes
        let all = c.prefix_by_percent(100);
        assert_eq!(all.num_docs(), 3);
    }

    #[test]
    #[should_panic]
    fn prefix_zero_percent_rejected() {
        let _ = tiny().prefix_by_percent(0);
    }
}
