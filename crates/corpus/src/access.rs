//! Document-request workloads (§4 "Method").
//!
//! The paper drives every retrieval experiment with two streams of 100 000
//! document IDs:
//!
//! 1. **Sequential** — ascending IDs, modelling large-scale batch
//!    processing (wraps around when the collection is smaller than the
//!    request count).
//! 2. **Query log** — the concatenated top-20 results of real search
//!    queries (TREC 2009 Million Query track run through Zettair). We model
//!    the essential statistics of ranked retrieval output: document
//!    popularity is heavily skewed (a Zipf law over a random permutation of
//!    the collection, so popular documents are scattered across the
//!    storage order), grouped in runs of `k` results per query.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sequential IDs `0, 1, 2, …` wrapping at `num_docs` — the paper's
/// "ordered document requests".
pub fn sequential(num_docs: usize, count: usize) -> Vec<u32> {
    assert!(num_docs > 0);
    (0..count).map(|i| (i % num_docs) as u32).collect()
}

/// Simulated ranked-retrieval request stream: `count` IDs grouped as
/// `results_per_query`-sized query results, document popularity Zipfian,
/// popular documents scattered uniformly over the ID space.
pub fn query_log(num_docs: usize, count: usize, results_per_query: usize, seed: u64) -> Vec<u32> {
    assert!(num_docs > 0 && results_per_query > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    // Random permutation: rank r (popular = low) -> actual document ID.
    let mut perm: Vec<u32> = (0..num_docs as u32).collect();
    for i in (1..perm.len()).rev() {
        let j = rng.random_range(0..=i);
        perm.swap(i, j);
    }
    // Zipf cumulative weights over ranks.
    let mut cumulative = Vec::with_capacity(num_docs);
    let mut total = 0.0f64;
    for rank in 1..=num_docs {
        total += 1.0 / (rank as f64).powf(0.9);
        cumulative.push(total);
    }
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        // One query: results_per_query draws without replacement.
        let mut seen = std::collections::HashSet::with_capacity(results_per_query);
        for _ in 0..results_per_query.min(count - out.len()) {
            let mut id;
            loop {
                let x = rng.random_range(0.0..total);
                let rank = cumulative.partition_point(|&c| c < x).min(num_docs - 1);
                id = perm[rank];
                if seen.insert(id) || seen.len() >= num_docs {
                    break;
                }
            }
            out.push(id);
        }
    }
    out
}

/// Partitions a request stream round-robin into `threads` per-thread
/// streams for concurrent replay. Round-robin (rather than chunking)
/// keeps every shard statistically similar to the full stream — each
/// thread sees the same Zipf head and the same stride pattern — so
/// per-thread rates add up to a faithful concurrent workload.
pub fn shards(requests: &[u32], threads: usize) -> Vec<Vec<u32>> {
    let threads = threads.max(1).min(requests.len().max(1));
    let mut out: Vec<Vec<u32>> = (0..threads)
        .map(|_| Vec::with_capacity(requests.len() / threads + 1))
        .collect();
    for (i, &id) in requests.iter().enumerate() {
        out[i % threads].push(id);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_wraps() {
        assert_eq!(sequential(3, 7), vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn query_log_is_deterministic_and_in_range() {
        let a = query_log(1000, 5000, 20, 9);
        let b = query_log(1000, 5000, 20, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5000);
        assert!(a.iter().all(|&id| (id as usize) < 1000));
    }

    #[test]
    fn query_log_is_skewed() {
        let ids = query_log(10_000, 50_000, 20, 3);
        let mut counts = std::collections::HashMap::new();
        for &id in &ids {
            *counts.entry(id).or_insert(0u32) += 1;
        }
        // Zipf head: a few documents requested many times.
        let max = counts.values().copied().max().unwrap();
        assert!(max > 50, "peak popularity only {max}");
        // But not degenerate: thousands of distinct documents appear.
        assert!(counts.len() > 2_000, "only {} distinct", counts.len());
    }

    #[test]
    fn queries_do_not_repeat_within_a_query() {
        let ids = query_log(500, 2000, 10, 4);
        for q in ids.chunks(10) {
            let set: std::collections::HashSet<_> = q.iter().collect();
            assert_eq!(set.len(), q.len(), "duplicate in query {q:?}");
        }
    }

    #[test]
    fn shards_partition_without_loss_or_reorder() {
        let reqs = query_log(100, 1000, 10, 6);
        let shards = shards(&reqs, 4);
        assert_eq!(shards.len(), 4);
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), reqs.len());
        // Round-robin: shard t holds requests t, t+4, t+8, ... in order.
        for (t, shard) in shards.iter().enumerate() {
            for (j, &id) in shard.iter().enumerate() {
                assert_eq!(id, reqs[t + j * 4]);
            }
        }
        // Degenerate thread counts still cover everything.
        assert_eq!(super::shards(&reqs, 0), super::shards(&reqs, 1));
        assert_eq!(super::shards(&reqs, 1)[0], reqs);
        let over = super::shards(&reqs[..3], 8);
        assert_eq!(over.len(), 3);
    }

    #[test]
    fn popular_documents_are_scattered_over_id_space() {
        // The permutation must prevent "popular = low ID".
        let ids = query_log(10_000, 20_000, 20, 8);
        let mean = ids.iter().map(|&i| i as f64).sum::<f64>() / ids.len() as f64;
        assert!((2_000.0..8_000.0).contains(&mean), "mean id {mean}");
    }
}
