//! Synthetic genomic collections: a reference sequence plus mutated
//! re-sequenced individuals.
//!
//! RLZ was originally proposed for exactly this workload (Kuruppu, Puglisi
//! & Zobel, SPIRE 2010 — reference \[20\] of the paper): thousands of genomes
//! that differ from a reference by a sprinkle of SNPs and indels compress
//! spectacularly against a dictionary holding one reference. The
//! `genome_store` example uses this generator.

use crate::Collection;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a genome collection.
#[derive(Debug, Clone)]
pub struct GenomeConfig {
    /// Number of individual sequences (documents).
    pub individuals: usize,
    /// Length of the reference sequence in bases.
    pub reference_len: usize,
    /// Per-base probability of a SNP in an individual.
    pub snp_rate: f64,
    /// Per-base probability of starting a short indel.
    pub indel_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenomeConfig {
    fn default() -> Self {
        GenomeConfig {
            individuals: 32,
            reference_len: 100_000,
            snp_rate: 0.001,
            indel_rate: 0.0001,
            seed: 0xD4A,
        }
    }
}

const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Generates the reference sequence.
pub fn reference(config: &GenomeConfig) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..config.reference_len)
        .map(|_| BASES[rng.random_range(0..4usize)])
        .collect()
}

/// Generates a collection of individuals mutated from the reference.
///
/// Document `i` is individual `i`; URLs are `genome://individual/{i}`.
pub fn generate(config: &GenomeConfig) -> Collection {
    let reference = reference(config);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xBEEF);
    let mut collection = Collection::default();
    for ind in 0..config.individuals {
        let mut seq = Vec::with_capacity(reference.len() + 64);
        let mut i = 0usize;
        while i < reference.len() {
            if rng.random_bool(config.snp_rate) {
                // Substitute with a different base.
                let cur = reference[i];
                let mut b = BASES[rng.random_range(0..4usize)];
                while b == cur {
                    b = BASES[rng.random_range(0..4usize)];
                }
                seq.push(b);
                i += 1;
            } else if rng.random_bool(config.indel_rate) {
                let len = rng.random_range(1..=8usize);
                if rng.random_bool(0.5) {
                    // Insertion of random bases.
                    for _ in 0..len {
                        seq.push(BASES[rng.random_range(0..4usize)]);
                    }
                } else {
                    // Deletion.
                    i = (i + len).min(reference.len());
                }
            } else {
                seq.push(reference[i]);
                i += 1;
            }
        }
        collection.push(format!("genome://individual/{ind}"), &seq);
    }
    collection
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = GenomeConfig {
            individuals: 4,
            reference_len: 10_000,
            ..Default::default()
        };
        assert_eq!(generate(&cfg).data, generate(&cfg).data);
    }

    #[test]
    fn individuals_are_close_to_reference() {
        // SNPs only: positional identity is meaningful (indels would shift
        // the alignment and make a positional comparison useless).
        let cfg = GenomeConfig {
            individuals: 3,
            reference_len: 20_000,
            snp_rate: 0.001,
            indel_rate: 0.0,
            seed: 5,
        };
        let reference = reference(&cfg);
        let c = generate(&cfg);
        for doc in c.iter_docs() {
            assert_eq!(doc.len(), reference.len());
            let same = doc.iter().zip(&reference).filter(|(a, b)| a == b).count();
            // Expect ~0.1% SNPs; allow generous slack.
            assert!(same > reference.len() * 99 / 100, "{same} identical");
        }
    }

    #[test]
    fn indels_change_lengths_only_slightly() {
        let cfg = GenomeConfig {
            individuals: 4,
            reference_len: 50_000,
            snp_rate: 0.0,
            indel_rate: 0.0005,
            seed: 6,
        };
        let c = generate(&cfg);
        for doc in c.iter_docs() {
            let diff = doc.len().abs_diff(cfg.reference_len);
            assert!(diff < cfg.reference_len / 100, "length diff {diff}");
        }
    }

    #[test]
    fn sequences_are_dna_alphabet() {
        let c = generate(&GenomeConfig {
            individuals: 2,
            reference_len: 5_000,
            ..Default::default()
        });
        for doc in c.iter_docs() {
            assert!(doc.iter().all(|b| BASES.contains(b)));
        }
    }

    #[test]
    fn individuals_differ_from_each_other() {
        let c = generate(&GenomeConfig {
            individuals: 2,
            reference_len: 50_000,
            ..Default::default()
        });
        assert_ne!(c.doc(0), c.doc(1));
    }
}
