//! Zipfian vocabularies and phrase generation for natural-language-like
//! synthetic text.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A vocabulary of pseudo-words with a Zipf rank-frequency law.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    words: Vec<String>,
    /// Cumulative (unnormalized) Zipf weights for sampling.
    cumulative: Vec<f64>,
}

impl Vocabulary {
    /// Generates `size` distinct pseudo-words with Zipf exponent `s`
    /// (natural text is near `s = 1.0`).
    pub fn generate(size: usize, s: f64, seed: u64) -> Self {
        assert!(size > 0, "vocabulary cannot be empty");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut words = Vec::with_capacity(size);
        let consonants = b"bcdfghjklmnpqrstvwz";
        let vowels = b"aeiou";
        let mut seen = std::collections::HashSet::with_capacity(size);
        while words.len() < size {
            let syllables = rng.random_range(1..=4usize);
            let mut w = String::new();
            for _ in 0..syllables {
                w.push(consonants[rng.random_range(0..consonants.len())] as char);
                w.push(vowels[rng.random_range(0..vowels.len())] as char);
                if rng.random_range(0..3) == 0 {
                    w.push(consonants[rng.random_range(0..consonants.len())] as char);
                }
            }
            if seen.insert(w.clone()) {
                words.push(w);
            }
        }
        let mut cumulative = Vec::with_capacity(size);
        let mut total = 0.0f64;
        for rank in 1..=size {
            total += 1.0 / (rank as f64).powf(s);
            cumulative.push(total);
        }
        Vocabulary { words, cumulative }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the vocabulary has no words (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Samples one word according to the Zipf law.
    pub fn sample<'a>(&'a self, rng: &mut StdRng) -> &'a str {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.random_range(0.0..total);
        let idx = self.cumulative.partition_point(|&c| c < x);
        &self.words[idx.min(self.words.len() - 1)]
    }

    /// Word by rank (0 = most frequent).
    pub fn word(&self, rank: usize) -> &str {
        &self.words[rank]
    }

    /// Appends a sentence of `n` Zipf-sampled words to `out`.
    pub fn sentence(&self, rng: &mut StdRng, n: usize, out: &mut Vec<u8>) {
        for i in 0..n {
            if i > 0 {
                out.push(b' ');
            }
            out.extend_from_slice(self.sample(rng).as_bytes());
        }
        out.extend_from_slice(b". ");
    }
}

/// A Zipf-distributed pool of multi-word phrases.
///
/// Natural-language collections repeat *phrases*, not just words — the
/// paper measures average RLZ factor lengths of 30–46 bytes even with
/// dictionaries of 0.12 % of the collection, which is only possible when
/// long n-grams recur across documents. Body text generated from this pool
/// reproduces that property: popular phrases appear in many documents and
/// land in any evenly spaced dictionary sample.
#[derive(Debug, Clone)]
pub struct PhrasePool {
    phrases: Vec<Vec<u8>>,
    cumulative: Vec<f64>,
}

impl PhrasePool {
    /// Builds `count` phrases of 4–12 words from `vocab`, ranked by a Zipf
    /// law with exponent `s`.
    pub fn generate(vocab: &Vocabulary, count: usize, s: f64, seed: u64) -> Self {
        assert!(count > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut phrases = Vec::with_capacity(count);
        for _ in 0..count {
            let words = rng.random_range(6..=16usize);
            let mut p = Vec::new();
            for w in 0..words {
                if w > 0 {
                    p.push(b' ');
                }
                p.extend_from_slice(vocab.sample(&mut rng).as_bytes());
            }
            phrases.push(p);
        }
        let mut cumulative = Vec::with_capacity(count);
        let mut total = 0.0f64;
        for rank in 1..=count {
            total += 1.0 / (rank as f64).powf(s);
            cumulative.push(total);
        }
        PhrasePool {
            phrases,
            cumulative,
        }
    }

    /// Samples one phrase by the Zipf law.
    pub fn sample<'a>(&'a self, rng: &mut StdRng) -> &'a [u8] {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.random_range(0.0..total);
        let idx = self.cumulative.partition_point(|&c| c < x);
        &self.phrases[idx.min(self.phrases.len() - 1)]
    }

    /// Appends roughly `approx_bytes` of running text: Zipf-sampled phrases
    /// joined with punctuation, with a `fresh_ratio` fraction of novel
    /// unigram words mixed in (the "new content" of a page).
    pub fn emit_text(
        &self,
        vocab: &Vocabulary,
        rng: &mut StdRng,
        approx_bytes: usize,
        fresh_ratio: f64,
        out: &mut Vec<u8>,
    ) {
        let start = out.len();
        while out.len() - start < approx_bytes {
            if rng.random_bool(fresh_ratio) {
                let words = rng.random_range(2..=6usize);
                for w in 0..words {
                    if w > 0 {
                        out.push(b' ');
                    }
                    out.extend_from_slice(vocab.sample(rng).as_bytes());
                }
            } else {
                out.extend_from_slice(self.sample(rng));
            }
            out.extend_from_slice(match rng.random_range(0..8u32) {
                0 => &b". "[..],
                1 => &b", "[..],
                _ => &b" "[..],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phrase_pool_is_deterministic_and_skewed() {
        let v = Vocabulary::generate(1000, 1.0, 2);
        let a = PhrasePool::generate(&v, 500, 1.0, 9);
        let b = PhrasePool::generate(&v, 500, 1.0, 9);
        assert_eq!(a.phrases, b.phrases);
        // Head phrases dominate samples.
        let mut rng = StdRng::seed_from_u64(17);
        let mut head = 0usize;
        for _ in 0..2000 {
            let p = a.sample(&mut rng);
            if a.phrases[..10].iter().any(|q| q == p) {
                head += 1;
            }
        }
        assert!(head > 300, "only {head} of 2000 samples from the head");
    }

    #[test]
    fn emit_text_reaches_target_length() {
        let v = Vocabulary::generate(500, 1.0, 3);
        let pool = PhrasePool::generate(&v, 200, 1.0, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut out = Vec::new();
        pool.emit_text(&v, &mut rng, 5000, 0.15, &mut out);
        assert!(out.len() >= 5000 && out.len() < 5300, "{} bytes", out.len());
    }

    #[test]
    fn emitted_text_has_long_repeats_across_calls() {
        // Two independent documents must share full phrases (the global
        // redundancy an RLZ dictionary exploits).
        let v = Vocabulary::generate(2000, 1.0, 6);
        let pool = PhrasePool::generate(&v, 1000, 1.0, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let mut a = Vec::new();
        pool.emit_text(&v, &mut rng, 20_000, 0.15, &mut a);
        let mut b = Vec::new();
        pool.emit_text(&v, &mut rng, 20_000, 0.15, &mut b);
        // Longest common substring of length >= 30 must exist; check by
        // scanning 30-byte windows of `a` in `b` (hash set).
        let windows: std::collections::HashSet<&[u8]> = a.windows(30).collect();
        let shared = b.windows(30).any(|w| windows.contains(w));
        assert!(shared, "no 30-byte n-gram shared between documents");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = Vocabulary::generate(500, 1.0, 7);
        let b = Vocabulary::generate(500, 1.0, 7);
        assert_eq!(a.words, b.words);
        let c = Vocabulary::generate(500, 1.0, 8);
        assert_ne!(a.words, c.words);
    }

    #[test]
    fn sampling_is_skewed_toward_low_ranks() {
        let v = Vocabulary::generate(1000, 1.0, 3);
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = vec![0u32; 1000];
        for _ in 0..20_000 {
            let w = v.sample(&mut rng).to_owned();
            let rank = v.words.iter().position(|x| *x == w).unwrap();
            counts[rank] += 1;
        }
        let top10: u32 = counts[..10].iter().sum();
        let bottom_half: u32 = counts[500..].iter().sum();
        assert!(
            top10 > bottom_half,
            "Zipf head ({top10}) should outweigh the tail half ({bottom_half})"
        );
    }

    #[test]
    fn sentences_contain_requested_word_count() {
        let v = Vocabulary::generate(100, 1.0, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        v.sentence(&mut rng, 12, &mut out);
        let s = String::from_utf8(out).unwrap();
        assert_eq!(s.trim_end_matches(". ").split(' ').count(), 12);
        assert!(s.ends_with(". "));
    }

    #[test]
    fn words_are_distinct() {
        let v = Vocabulary::generate(2000, 1.0, 11);
        let set: std::collections::HashSet<_> = v.words.iter().collect();
        assert_eq!(set.len(), v.words.len());
    }
}
