//! Synthetic web-crawl generator: GOV2-like and Wikipedia-like collections.
//!
//! Structure of the generated crawl:
//!
//! * The crawl is partitioned into **sites**; each site has a fixed header,
//!   navigation block, footer and a small pool of paragraph templates —
//!   the boilerplate that makes web collections globally redundant.
//! * Documents are emitted in interleaved **crawl order** (site pages are
//!   far apart), while each document's URL allows clustering via
//!   [`crate::Collection::url_sorted`].
//! * Bodies mix Zipfian sentences with site template phrases; a fraction of
//!   pages are **mirrors** (near-duplicates) of earlier pages on the same
//!   site.
//!
//! The two presets differ the way GOV2 and Wikipedia do in the paper: GOV2
//! pages are smaller (~18 KB) with heavier markup; Wikipedia pages are
//! larger (~45 KB) with lighter markup and longer running text.

use crate::text::{PhrasePool, Vocabulary};
use crate::Collection;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which real-world collection the generator imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectionStyle {
    /// ~18 KB documents, heavy markup, .gov-style sites (the paper's GOV2).
    Gov2,
    /// ~45 KB documents, lighter markup, article-style pages (the paper's
    /// Wikipedia snapshot).
    Wikipedia,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct WebConfig {
    /// Approximate total collection size in bytes (generation stops at the
    /// first document boundary past this).
    pub total_bytes: usize,
    /// Style preset.
    pub style: CollectionStyle,
    /// Number of distinct sites (template pools).
    pub num_sites: usize,
    /// Vocabulary size for body text.
    pub vocab_size: usize,
    /// Probability that a page is a near-duplicate of an earlier page of
    /// the same site.
    pub mirror_prob: f64,
    /// RNG seed: equal configs generate byte-identical collections.
    pub seed: u64,
}

impl WebConfig {
    /// GOV2-like preset at the given size.
    pub fn gov2(total_bytes: usize, seed: u64) -> Self {
        WebConfig {
            total_bytes,
            style: CollectionStyle::Gov2,
            // GOV2's .gov crawl has many hosts; scale hosts with size so
            // per-site redundancy stays size-independent.
            num_sites: (total_bytes / (512 * 1024)).clamp(4, 4096),
            vocab_size: 20_000,
            mirror_prob: 0.08,
            seed,
        }
    }

    /// Wikipedia-like preset at the given size.
    pub fn wikipedia(total_bytes: usize, seed: u64) -> Self {
        WebConfig {
            total_bytes,
            style: CollectionStyle::Wikipedia,
            // One "site" per template family; Wikipedia is a single host
            // but has many infobox/template families.
            num_sites: (total_bytes / (1024 * 1024)).clamp(4, 1024),
            vocab_size: 40_000,
            mirror_prob: 0.04,
            seed,
        }
    }

    fn avg_doc_bytes(&self) -> usize {
        match self.style {
            CollectionStyle::Gov2 => 18 * 1024,
            CollectionStyle::Wikipedia => 45 * 1024,
        }
    }

    fn markup_weight(&self) -> f64 {
        match self.style {
            CollectionStyle::Gov2 => 0.45,
            CollectionStyle::Wikipedia => 0.22,
        }
    }
}

/// A global library of boilerplate pieces shared across sites.
///
/// Real crawls have far less *distinct* boilerplate than `sites ×
/// templates`: most hosts run one of a handful of CMS/web-server templates.
/// This is what makes a 0.1–0.5 % sampled dictionary effective on hundreds
/// of gigabytes — the library below is the bounded inventory a dictionary
/// can actually capture, while every site still carries small unique
/// strings (its host name, contact line, titles).
struct GlobalTemplates {
    headers: Vec<Vec<u8>>,
    navs: Vec<Vec<u8>>,
    footers: Vec<Vec<u8>>,
    callouts: Vec<Vec<u8>>,
}

impl GlobalTemplates {
    fn generate(vocab: &Vocabulary, rng: &mut StdRng) -> Self {
        let headers = (0..8)
            .map(|v| {
                let mut h = Vec::new();
                h.extend_from_slice(b"<!DOCTYPE html><html><head><meta charset=\"utf-8\">");
                h.extend_from_slice(
                    format!("<meta name=\"generator\" content=\"SiteBuilder {v}.2\">").as_bytes(),
                );
                h.extend_from_slice(b"<script>function nav(){var m=document.getElementById('menu');m.style.display=m.style.display=='none'?'block':'none';}</script><style>");
                for _ in 0..10 {
                    h.extend_from_slice(b".c-");
                    h.extend_from_slice(vocab.sample(rng).as_bytes());
                    h.extend_from_slice(b"{margin:0;padding:4px;border:1px solid #ccc;font-family:serif}");
                }
                h.extend_from_slice(b"</style>");
                h
            })
            .collect();
        let navs = (0..12)
            .map(|_| {
                let mut nav = Vec::new();
                nav.extend_from_slice(b"<ul id=\"menu\" class=\"navigation\">");
                for _ in 0..12 {
                    nav.extend_from_slice(b"<li><a href=\"/");
                    nav.extend_from_slice(vocab.sample(rng).as_bytes());
                    nav.extend_from_slice(b".html\">");
                    nav.extend_from_slice(vocab.sample(rng).as_bytes());
                    nav.extend_from_slice(b"</a></li>");
                }
                nav.extend_from_slice(b"</ul>");
                nav
            })
            .collect();
        let footers = (0..8)
            .map(|_| {
                let mut f = Vec::new();
                f.extend_from_slice(b"<div class=\"footer\"><p>");
                vocab.sentence(rng, 22, &mut f);
                f.extend_from_slice(b"</p><p>Privacy policy | Accessibility | FOIA | Site map</p>");
                f
            })
            .collect();
        let callouts = (0..40)
            .map(|_| {
                let mut t = Vec::new();
                t.extend_from_slice(b"<div class=\"callout\"><h3>");
                vocab.sentence(rng, 3, &mut t);
                t.extend_from_slice(b"</h3><p>");
                vocab.sentence(rng, 40, &mut t);
                t.extend_from_slice(b"</p></div>");
                t
            })
            .collect();
        GlobalTemplates {
            headers,
            navs,
            footers,
            callouts,
        }
    }
}

/// One site's boilerplate, assembled from the global library plus unique
/// host-specific strings.
struct Site {
    host: String,
    header: Vec<u8>,
    footer: Vec<u8>,
    nav: Vec<u8>,
    /// Callout templates (indices into the global library) this site reuses.
    templates: Vec<usize>,
    /// Offsets of this site's pages already emitted (for mirroring).
    pages: Vec<usize>,
    next_path: usize,
}

fn make_site(
    id: usize,
    library: &GlobalTemplates,
    vocab: &Vocabulary,
    rng: &mut StdRng,
    style: CollectionStyle,
) -> Site {
    let host = match style {
        CollectionStyle::Gov2 => format!("agency{id:04}.gov"),
        CollectionStyle::Wikipedia => format!("en.wikipedia.example/t{id:04}"),
    };
    // Header = global variant + site-specific title/stylesheet line.
    let mut header = library.headers[rng.random_range(0..library.headers.len())].clone();
    header.extend_from_slice(
        format!("<link rel=\"stylesheet\" href=\"/{host}/local.css\"><title>").as_bytes(),
    );
    let mut title_words = Vec::new();
    vocab.sentence(rng, 4, &mut title_words);
    header.extend_from_slice(&title_words);
    header.extend_from_slice(b"</title></head><body>");

    let nav = library.navs[rng.random_range(0..library.navs.len())].clone();

    let mut footer = library.footers[rng.random_range(0..library.footers.len())].clone();
    footer.extend_from_slice(
        format!("<p>Contact: webmaster@{host} &copy; 2004</p></div></body></html>").as_bytes(),
    );

    // Each site reuses a handful of the global callout templates.
    let templates = (0..6)
        .map(|_| rng.random_range(0..library.callouts.len()))
        .collect();

    Site {
        host,
        header,
        footer,
        nav,
        templates,
        pages: Vec::new(),
        next_path: 0,
    }
}

/// Generates a web collection per `config` (deterministic for a config).
pub fn generate_web(config: &WebConfig) -> Collection {
    assert!(config.num_sites > 0, "need at least one site");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let vocab = Vocabulary::generate(config.vocab_size, 1.05, config.seed ^ 0xC0FFEE);
    // Global phrase inventory: the n-gram redundancy of natural text. Like
    // a natural language, its size grows sub-linearly with the collection,
    // so paper-style dictionary fractions capture its Zipf head.
    let num_phrases = (config.total_bytes / 32_768).clamp(1_000, 6_000);
    let phrases = PhrasePool::generate(&vocab, num_phrases, 1.1, config.seed ^ 0x9A55);
    let library = GlobalTemplates::generate(&vocab, &mut rng);
    let mut sites: Vec<Site> = (0..config.num_sites)
        .map(|i| make_site(i, &library, &vocab, &mut rng, config.style))
        .collect();

    let mut collection = Collection::default();
    let avg = config.avg_doc_bytes();
    while collection.total_bytes() < config.total_bytes {
        // Crawl order: hop between sites pseudo-randomly so same-site pages
        // are spread across the collection.
        let site_idx = rng.random_range(0..sites.len());
        let target = rng.random_range(avg / 2..avg + avg / 2);

        // Mirrors: occasionally re-emit an earlier page with a small edit.
        let body = if !sites[site_idx].pages.is_empty() && rng.random_bool(config.mirror_prob) {
            let site = &sites[site_idx];
            let which = site.pages[rng.random_range(0..site.pages.len())];
            let mut body = collection.doc(which).to_vec();
            let mut patch = Vec::new();
            patch.extend_from_slice(b"<p class=\"updated\">");
            vocab.sentence(&mut rng, 10, &mut patch);
            patch.extend_from_slice(b"</p>");
            let cut = body.len().saturating_sub(sites[site_idx].footer.len());
            body.splice(cut..cut, patch);
            body
        } else {
            let site = &sites[site_idx];
            let mut body = Vec::with_capacity(target + 1024);
            body.extend_from_slice(&site.header);
            body.extend_from_slice(&site.nav);
            while body.len() + site.footer.len() < target {
                if rng.random_bool(config.markup_weight()) {
                    let idx = site.templates[rng.random_range(0..site.templates.len())];
                    body.extend_from_slice(&library.callouts[idx]);
                } else {
                    body.extend_from_slice(b"<p>");
                    let para = rng.random_range(250..700usize);
                    phrases.emit_text(&vocab, &mut rng, para, 0.12, &mut body);
                    body.extend_from_slice(b"</p>");
                }
            }
            body.extend_from_slice(&site.footer);
            body
        };

        let site = &mut sites[site_idx];
        let url = format!("http://{}/page{:06}.html", site.host, site.next_path);
        site.next_path += 1;
        site.pages.push(collection.num_docs());
        collection.push(url, &body);
    }
    collection
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let cfg = WebConfig::gov2(256 * 1024, 42);
        let a = generate_web(&cfg);
        let b = generate_web(&cfg);
        assert_eq!(a.data, b.data);
        assert_eq!(a.docs.len(), b.docs.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_web(&WebConfig::gov2(128 * 1024, 1));
        let b = generate_web(&WebConfig::gov2(128 * 1024, 2));
        assert_ne!(a.data, b.data);
    }

    #[test]
    fn respects_target_size_and_doc_shape() {
        let cfg = WebConfig::gov2(1024 * 1024, 7);
        let c = generate_web(&cfg);
        assert!(c.total_bytes() >= cfg.total_bytes);
        // One document of overshoot at most.
        assert!(c.total_bytes() < cfg.total_bytes + 64 * 1024);
        let avg = c.total_bytes() / c.num_docs();
        assert!((9_000..36_000).contains(&avg), "avg doc size {avg}");
    }

    #[test]
    fn wikipedia_docs_are_larger_than_gov2() {
        let g = generate_web(&WebConfig::gov2(512 * 1024, 3));
        let w = generate_web(&WebConfig::wikipedia(512 * 1024, 3));
        let ga = g.total_bytes() / g.num_docs();
        let wa = w.total_bytes() / w.num_docs();
        assert!(wa > ga * 2, "wiki {wa} vs gov2 {ga}");
    }

    #[test]
    fn same_site_pages_share_boilerplate() {
        let c = generate_web(&WebConfig::gov2(512 * 1024, 5));
        // Find two pages of the same host far apart in crawl order.
        let host = |url: &str| url.split('/').nth(2).unwrap().to_owned();
        let mut by_host: std::collections::HashMap<String, Vec<usize>> = Default::default();
        for (i, e) in c.docs.iter().enumerate() {
            by_host.entry(host(&e.url)).or_default().push(i);
        }
        let (_, ids) = by_host
            .iter()
            .max_by_key(|(_, v)| v.len())
            .expect("some host");
        assert!(ids.len() >= 2, "need repeat visits to a site");
        let a = c.doc(ids[0]);
        let b = c.doc(*ids.last().unwrap());
        // Shared site header: identical prefix of substantial length.
        let common = a.iter().zip(b).take_while(|(x, y)| x == y).count();
        assert!(common > 100, "same-site pages share only {common} bytes");
    }

    #[test]
    fn urls_are_unique_and_sortable() {
        let c = generate_web(&WebConfig::gov2(256 * 1024, 11));
        let mut urls: Vec<&str> = c.docs.iter().map(|d| d.url.as_str()).collect();
        let n = urls.len();
        urls.sort();
        urls.dedup();
        assert_eq!(urls.len(), n, "duplicate URLs generated");
    }

    #[test]
    fn url_sort_clusters_hosts() {
        let c = generate_web(&WebConfig::gov2(512 * 1024, 13)).url_sorted();
        let host = |url: &str| url.split('/').nth(2).unwrap().to_owned();
        // Hosts must appear in contiguous runs after sorting.
        let mut seen = std::collections::HashSet::new();
        let mut prev = String::new();
        for e in &c.docs {
            let h = host(&e.url);
            if h != prev {
                assert!(seen.insert(h.clone()), "host {h} split into runs");
                prev = h;
            }
        }
    }
}
