//! The end-to-end per-document RLZ compressor: factorize against a shared
//! dictionary, code the factor streams, decode by translating factors back
//! through the memory-resident dictionary.

use crate::coding::{
    decode_and_expand, encode_document, encode_document_into, EncodeScratch, PairCoding,
};
use crate::factor::{factorize, Factor};
use crate::Dictionary;
use rlz_codecs::CodecError;

/// A reusable RLZ compressor bound to one dictionary and pair coding.
///
/// The dictionary is held in memory (the property §3.1 credits for fast
/// random access: "decoding can start immediately"). Compression of
/// different documents through a shared `RlzCompressor` is embarrassingly
/// parallel — the struct is `Sync` and all methods take `&self`.
#[derive(Debug)]
pub struct RlzCompressor {
    dict: Dictionary,
    coding: PairCoding,
}

impl RlzCompressor {
    /// Creates a compressor over `dict` with the given pair coding.
    pub fn new(dict: Dictionary, coding: PairCoding) -> Self {
        RlzCompressor { dict, coding }
    }

    /// The dictionary in use.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// The pair coding in use.
    pub fn coding(&self) -> PairCoding {
        self.coding
    }

    /// Factorizes one document (exposed for statistics collection).
    pub fn factorize(&self, doc: &[u8]) -> Vec<Factor> {
        let mut out = Vec::new();
        factorize(&self.dict, doc, &mut out);
        out
    }

    /// Compresses one document.
    pub fn compress(&self, doc: &[u8]) -> Vec<u8> {
        encode_document(&self.factorize(doc), self.coding)
    }

    /// Compresses one document through a caller-owned [`EncodeScratch`],
    /// appending the encoded record to `out`. Byte-identical to
    /// [`RlzCompressor::compress`]; a bulk builder that keeps one scratch
    /// per worker thread compresses steady-state documents without heap
    /// allocation (the factor list and both coded streams reuse their
    /// high-water capacity).
    pub fn compress_with(&self, doc: &[u8], scratch: &mut EncodeScratch, out: &mut Vec<u8>) {
        let mut factors = std::mem::take(&mut scratch.factors);
        factors.clear();
        factorize(&self.dict, doc, &mut factors);
        encode_document_into(&factors, self.coding, scratch, out);
        scratch.factors = factors;
    }

    /// Compresses a pre-computed factorization (avoids re-parsing when the
    /// caller also wants statistics).
    pub fn encode_factors(&self, factors: &[Factor]) -> Vec<u8> {
        encode_document(factors, self.coding)
    }

    /// Decompresses one document into a fresh buffer.
    pub fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::new();
        self.decompress_into(data, &mut out)?;
        Ok(out)
    }

    /// Decompresses one document, appending to `out` (reusable buffer for
    /// retrieval loops).
    pub fn decompress_into(&self, data: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        decode_and_expand(data, self.coding, self.dict.bytes(), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SampleStrategy;

    fn web_like_collection() -> Vec<u8> {
        let mut c = Vec::new();
        for i in 0..3000u32 {
            c.extend_from_slice(
                format!(
                    "<html><head><title>Page {i}</title></head><body>\
                     <nav>home | products | contact</nav>\
                     <p>Content number {} with shared phrasing across pages.</p>\
                     </body></html>\n",
                    i % 97
                )
                .as_bytes(),
            );
        }
        c
    }

    #[test]
    fn roundtrip_all_paper_codings() {
        let collection = web_like_collection();
        let dict = Dictionary::sample(&collection, 8192, 1024, SampleStrategy::Evenly);
        let docs: Vec<&[u8]> = collection.chunks(1500).collect();
        for coding in PairCoding::PAPER_SET {
            let comp = RlzCompressor::new(dict.clone(), coding);
            for doc in &docs {
                let enc = comp.compress(doc);
                assert_eq!(&comp.decompress(&enc).unwrap(), doc, "{}", coding.name());
            }
        }
    }

    #[test]
    fn compression_beats_raw_on_templated_text() {
        let collection = web_like_collection();
        let dict = Dictionary::sample(
            &collection,
            collection.len() / 100,
            1024,
            SampleStrategy::Evenly,
        );
        let comp = RlzCompressor::new(dict, PairCoding::ZZ);
        let total_raw: usize = collection.len();
        let total_enc: usize = collection
            .chunks(2000)
            .map(|d| comp.compress(d).len())
            .sum();
        let ratio = total_enc as f64 / total_raw as f64;
        assert!(ratio < 0.35, "encoding ratio {:.3} too poor", ratio);
    }

    #[test]
    fn document_with_novel_bytes_roundtrips() {
        let dict = Dictionary::from_bytes(b"ascii only dictionary".to_vec());
        let comp = RlzCompressor::new(dict, PairCoding::UV);
        let doc: Vec<u8> = (0u8..=255).collect();
        let enc = comp.compress(&doc);
        assert_eq!(comp.decompress(&enc).unwrap(), doc);
    }

    #[test]
    fn decompress_into_reuses_buffer() {
        let dict = Dictionary::from_bytes(b"shared text shared text".to_vec());
        let comp = RlzCompressor::new(dict, PairCoding::UV);
        let enc1 = comp.compress(b"shared text one");
        let enc2 = comp.compress(b"shared text two");
        let mut buf = Vec::new();
        comp.decompress_into(&enc1, &mut buf).unwrap();
        comp.decompress_into(&enc2, &mut buf).unwrap();
        assert_eq!(buf, b"shared text oneshared text two");
    }

    #[test]
    fn corrupt_input_is_an_error_not_a_panic() {
        let dict = Dictionary::from_bytes(b"dictionary".to_vec());
        let comp = RlzCompressor::new(dict, PairCoding::ZZ);
        let mut enc = comp.compress(b"dictionary dictionary");
        for i in 0..enc.len() {
            enc[i] ^= 0xA5;
            let _ = comp.decompress(&enc);
            enc[i] ^= 0xA5;
        }
        assert!(comp.decompress(&[]).is_err());
        assert!(comp.decompress(&[0xFF]).is_err());
    }

    #[test]
    fn compressor_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RlzCompressor>();
    }
}
