//! RLZ factorization (§3, Figures 1 and 2 of the paper).
//!
//! A document `x` is factorized relative to dictionary `d` into substrings
//! `x = w₁w₂…wₖ` where each `wⱼ` is either the longest prefix of the
//! remaining input that occurs anywhere in `d`, or a single literal
//! character that does not occur in `d`. Each factor is a `(position,
//! length)` pair; `length == 0` marks a literal whose byte is stored in the
//! position field.

use crate::Dictionary;

/// One factor of an RLZ parse.
///
/// `len > 0`: copy `len` bytes from `pos` in the dictionary.
/// `len == 0`: emit the single byte stored in `pos` (a character absent
/// from the dictionary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Factor {
    /// Dictionary offset, or the literal byte when `len == 0`.
    pub pos: u32,
    /// Match length in bytes; zero marks a literal.
    pub len: u32,
}

impl Factor {
    /// A literal factor for byte `b`.
    #[inline]
    pub fn literal(b: u8) -> Self {
        Factor {
            pos: b as u32,
            len: 0,
        }
    }

    /// A copy factor.
    #[inline]
    pub fn copy(pos: u32, len: u32) -> Self {
        debug_assert!(len > 0);
        Factor { pos, len }
    }

    /// True when this factor is a literal character.
    #[inline]
    pub fn is_literal(&self) -> bool {
        self.len == 0
    }

    /// Number of text bytes this factor expands to.
    #[inline]
    pub fn expanded_len(&self) -> usize {
        if self.len == 0 {
            1
        } else {
            self.len as usize
        }
    }
}

/// Factorizes `text` relative to `dict`, appending factors to `out`
/// (the `Encode` function of Figure 1).
///
/// Works on one document at a time: the paper stops factors at document
/// boundaries so each document decodes independently, which is exactly what
/// a per-document call achieves.
///
/// Longest-match queries go through the dictionary's q-gram
/// [`PrefixIndex`](rlz_suffix::PrefixIndex), which skips the widest
/// `Refine` binary searches of every factor; the parse is byte-identical
/// to [`factorize_plain`], which keeps the paper's un-indexed search as
/// the correctness oracle and benchmark ablation.
pub fn factorize(dict: &Dictionary, text: &[u8], out: &mut Vec<Factor>) {
    let matcher = dict.matcher();
    let index = dict.prefix_index();
    let mut i = 0usize;
    while i < text.len() {
        let (pos, len) = matcher.longest_match_indexed(index, &text[i..]);
        if len == 0 {
            out.push(Factor::literal(text[i]));
            i += 1;
        } else {
            out.push(Factor::copy(pos, len));
            i += len as usize;
        }
    }
}

/// [`factorize`] using the un-indexed matcher of the paper (`Refine` from
/// the full suffix-array interval every factor). Produces the same parse;
/// kept as the correctness oracle for the prefix index and as the baseline
/// in the factorization-throughput benchmark.
pub fn factorize_plain(dict: &Dictionary, text: &[u8], out: &mut Vec<Factor>) {
    let matcher = dict.matcher();
    let mut i = 0usize;
    while i < text.len() {
        let (pos, len) = matcher.longest_match(&text[i..]);
        if len == 0 {
            out.push(Factor::literal(text[i]));
            i += 1;
        } else {
            out.push(Factor::copy(pos, len));
            i += len as usize;
        }
    }
}

/// Convenience wrapper returning a fresh factor vector.
pub fn factorize_to_vec(dict: &Dictionary, text: &[u8]) -> Vec<Factor> {
    let mut out = Vec::new();
    factorize(dict, text, &mut out);
    out
}

/// Errors from expanding a factor stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// A factor addresses bytes beyond the dictionary.
    FactorOutOfRange {
        /// Offending dictionary offset.
        pos: u32,
        /// Offending length.
        len: u32,
    },
    /// A literal factor's position field is not a byte value.
    BadLiteral(u32),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::FactorOutOfRange { pos, len } => {
                write!(f, "factor ({pos},{len}) exceeds dictionary bounds")
            }
            DecodeError::BadLiteral(v) => write!(f, "literal value {v} is not a byte"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Expands `factors` against the dictionary text, appending the document's
/// bytes to `out` (the `Decode` function of Figure 2).
pub fn expand(dict_bytes: &[u8], factors: &[Factor], out: &mut Vec<u8>) -> Result<(), DecodeError> {
    for f in factors {
        if f.len == 0 {
            let b = u8::try_from(f.pos).map_err(|_| DecodeError::BadLiteral(f.pos))?;
            out.push(b);
        } else {
            let start = f.pos as usize;
            let end = start + f.len as usize;
            let chunk = dict_bytes
                .get(start..end)
                .ok_or(DecodeError::FactorOutOfRange {
                    pos: f.pos,
                    len: f.len,
                })?;
            out.extend_from_slice(chunk);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SampleStrategy;

    fn dict(bytes: &[u8]) -> Dictionary {
        Dictionary::from_bytes(bytes.to_vec())
    }

    #[test]
    fn paper_worked_example() {
        // §3: x = bbaancabb relative to d = cabbaabba gives three factors:
        // (3,4) = "bbaa", ('n',0), (1,4) = "cabb" in the paper's 1-based
        // offsets — 0-based: (2,4), literal n, (0,4).
        let d = dict(b"cabbaabba");
        let factors = factorize_to_vec(&d, b"bbaancabb");
        assert_eq!(
            factors,
            vec![
                Factor::copy(2, 4),
                Factor::literal(b'n'),
                Factor::copy(0, 4),
            ]
        );
        let mut out = Vec::new();
        expand(d.bytes(), &factors, &mut out).unwrap();
        assert_eq!(out, b"bbaancabb");
    }

    #[test]
    fn empty_document_produces_no_factors() {
        let d = dict(b"dictionary");
        assert!(factorize_to_vec(&d, b"").is_empty());
    }

    #[test]
    fn document_of_only_unknown_bytes() {
        let d = dict(b"abc");
        let factors = factorize_to_vec(&d, b"xyz");
        assert_eq!(
            factors,
            vec![
                Factor::literal(b'x'),
                Factor::literal(b'y'),
                Factor::literal(b'z'),
            ]
        );
    }

    #[test]
    fn document_equal_to_dictionary_is_one_factor() {
        let d = dict(b"exact content match");
        let factors = factorize_to_vec(&d, b"exact content match");
        assert_eq!(factors, vec![Factor::copy(0, 19)]);
    }

    #[test]
    fn factorization_is_greedy_longest_match() {
        // Dictionary holds "abcd" and "cdef"; input "abcdef" must take the
        // longest prefix "abcd" then "ef" (from "cdef").
        let d = dict(b"abcd~cdef");
        let factors = factorize_to_vec(&d, b"abcdef");
        assert_eq!(factors.len(), 2);
        assert_eq!(factors[0], Factor::copy(0, 4));
        assert_eq!(factors[1].len, 2); // "ef"
        let mut out = Vec::new();
        expand(d.bytes(), &factors, &mut out).unwrap();
        assert_eq!(out, b"abcdef");
    }

    #[test]
    fn indexed_and_plain_parses_are_identical() {
        // The zero-behavioral-diff guarantee: on every corpus shape — high
        // redundancy, novel bytes, short docs — the indexed fast path must
        // emit exactly the factors the paper's search emits.
        let collection: Vec<u8> = (0..1500u32)
            .flat_map(|i| {
                format!("<page id={}>shared boilerplate {}</page>", i % 41, i % 7).into_bytes()
            })
            .collect();
        for q in [1usize, 2, 3] {
            let mut d = Dictionary::sample(&collection, 2048, 256, SampleStrategy::Evenly);
            d.reindex(q);
            let mut docs: Vec<&[u8]> = collection.chunks(333).collect();
            docs.push(b"\x00\xffnovel bytes\x01");
            docs.push(b"x");
            for doc in &docs {
                let mut fast = Vec::new();
                let mut plain = Vec::new();
                factorize(&d, doc, &mut fast);
                factorize_plain(&d, doc, &mut plain);
                assert_eq!(fast, plain, "q={q}");
            }
        }
    }

    #[test]
    fn roundtrip_with_sampled_dictionary() {
        let collection: Vec<u8> = (0..2000u32)
            .flat_map(|i| format!("<page id={}>shared boilerplate</page>", i % 37).into_bytes())
            .collect();
        let d = Dictionary::sample(&collection, 2048, 256, SampleStrategy::Evenly);
        let doc = b"<page id=12>shared boilerplate</page> with novel! tail \x01\x02";
        let factors = factorize_to_vec(&d, doc);
        let mut out = Vec::new();
        expand(d.bytes(), &factors, &mut out).unwrap();
        assert_eq!(out, doc);
    }

    #[test]
    fn expand_rejects_out_of_range_factor() {
        let d = dict(b"short");
        let bad = vec![Factor::copy(3, 10)];
        let mut out = Vec::new();
        assert_eq!(
            expand(d.bytes(), &bad, &mut out),
            Err(DecodeError::FactorOutOfRange { pos: 3, len: 10 })
        );
    }

    #[test]
    fn expand_rejects_non_byte_literal() {
        let mut out = Vec::new();
        assert_eq!(
            expand(b"d", &[Factor { pos: 300, len: 0 }], &mut out),
            Err(DecodeError::BadLiteral(300))
        );
    }

    #[test]
    fn empty_dictionary_factorizes_to_literals() {
        let d = dict(b"");
        let factors = factorize_to_vec(&d, b"ab");
        assert_eq!(factors.len(), 2);
        assert!(factors.iter().all(Factor::is_literal));
        let mut out = Vec::new();
        expand(d.bytes(), &factors, &mut out).unwrap();
        assert_eq!(out, b"ab");
    }
}
