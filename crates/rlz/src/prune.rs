//! Dictionary pruning — the paper's future-work direction (§6) studied in
//! Hoobin et al.'s companion SIGIR'11 paper, "Sample selection for
//! dictionary-based corpus compression" (reference \[17\]).
//!
//! Tables 2 and 3 show 7–40 % of an evenly sampled dictionary is never
//! referenced by any factor. The multi-pass scheme here implements the
//! paper's sketch: "make multiple passes of random sampling. During each
//! pass we find and eliminate redundancy, freeing space to be filled in
//! subsequent passes."
//!
//! Each pass: factorize a training sample of documents against the current
//! dictionary, drop dictionary regions that no factor touched, and refill
//! the freed budget with fresh samples drawn from elsewhere in the
//! collection. Pruning happens **before** any document is encoded, so no
//! encodings are invalidated.

use crate::dict::{Dictionary, SampleStrategy};
use crate::factor::factorize;
use crate::stats::FactorStats;

/// Configuration for iterative dictionary refinement.
#[derive(Debug, Clone)]
pub struct PruneConfig {
    /// Number of prune-and-refill passes.
    pub passes: usize,
    /// Fraction of the collection (per mille) factorized per pass to
    /// estimate usage. 50‰ = 5 % keeps passes cheap and estimates stable.
    pub train_per_mille: u32,
    /// Sample length for refill material.
    pub sample_len: usize,
    /// Minimum run of unused bytes eligible for eviction; short gaps stay
    /// so that factors spanning their neighbourhood survive.
    pub min_evict_run: usize,
    /// Seed for refill sampling.
    pub seed: u64,
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig {
            passes: 2,
            train_per_mille: 50,
            sample_len: 1024,
            min_evict_run: 64,
            seed: 0x17,
        }
    }
}

/// Iteratively prunes unused dictionary regions and refills the budget with
/// fresh samples. Returns the improved dictionary (same size as the input).
pub fn prune_and_refill(
    dict: Dictionary,
    collection: &[u8],
    doc_bounds: &[usize],
    config: &PruneConfig,
) -> Dictionary {
    let budget = dict.len();
    let mut current = dict;
    for pass in 0..config.passes {
        // 1. Estimate usage on a training subset of documents.
        let mut stats = FactorStats::new(current.len());
        let stride = (1000 / config.train_per_mille.clamp(1, 1000)) as usize;
        let mut factors = Vec::new();
        for w in doc_bounds.windows(2).step_by(stride.max(1)) {
            factors.clear();
            factorize(&current, &collection[w[0]..w[1]], &mut factors);
            stats.record(&factors);
        }
        // 2. Keep used regions (plus short unused gaps).
        let used = usage_mask(&stats, current.len(), config.min_evict_run);
        let mut kept = Vec::with_capacity(budget);
        for (i, &byte) in current.bytes().iter().enumerate() {
            if used[i] {
                kept.push(byte);
            }
        }
        let freed = budget - kept.len();
        if freed == 0 {
            break;
        }
        // 3. Refill with fresh samples from a different phase offset.
        let refill = Dictionary::sample(
            collection,
            freed,
            config.sample_len,
            SampleStrategy::Random {
                seed: config.seed ^ (pass as u64).wrapping_mul(0x9E37_79B9),
            },
        );
        kept.extend_from_slice(refill.bytes());
        kept.truncate(budget);
        current = Dictionary::from_bytes(kept);
    }
    current
}

/// Marks bytes to keep: used bytes, and unused runs shorter than
/// `min_evict_run`.
fn usage_mask(stats: &FactorStats, len: usize, min_evict_run: usize) -> Vec<bool> {
    let mut keep = vec![true; len];
    let used = stats.used();
    debug_assert_eq!(used.len(), len);
    let mut i = 0usize;
    while i < len {
        if !used[i] {
            let start = i;
            while i < len && !used[i] {
                i += 1;
            }
            if i - start >= min_evict_run {
                for slot in &mut keep[start..i] {
                    *slot = false;
                }
            }
        } else {
            i += 1;
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coding::PairCoding;
    use crate::RlzCompressor;

    fn collection_with_bounds() -> (Vec<u8>, Vec<usize>) {
        let mut data = Vec::new();
        let mut bounds = vec![0usize];
        for i in 0..800u32 {
            let doc = format!(
                "<entry id={i}><h1>catalog</h1><p>popular shared phrasing block {}</p>\
                 <footer>standard footer</footer></entry>",
                i % 13
            );
            data.extend_from_slice(doc.as_bytes());
            bounds.push(data.len());
        }
        (data, bounds)
    }

    #[test]
    fn pruning_never_worsens_much_and_usually_helps() {
        let (data, bounds) = collection_with_bounds();
        let budget = data.len() / 60;
        let base = Dictionary::sample(&data, budget, 256, SampleStrategy::Evenly);

        let enc_size = |d: &Dictionary| {
            let rlz = RlzCompressor::new(d.clone(), PairCoding::ZV);
            bounds
                .windows(2)
                .map(|w| rlz.compress(&data[w[0]..w[1]]).len())
                .sum::<usize>()
        };
        let before = enc_size(&base);
        let pruned = prune_and_refill(base, &data, &bounds, &PruneConfig::default());
        assert_eq!(pruned.len(), budget, "budget must be preserved");
        let after = enc_size(&pruned);
        // Refilled dictionaries must not regress noticeably; on this
        // highly-templated collection they should improve or hold.
        assert!(
            after as f64 <= before as f64 * 1.05,
            "pruning regressed: {before} -> {after}"
        );
    }

    #[test]
    fn pruning_preserves_roundtrips() {
        let (data, bounds) = collection_with_bounds();
        let base = Dictionary::sample(&data, 2048, 256, SampleStrategy::Evenly);
        let pruned = prune_and_refill(base, &data, &bounds, &PruneConfig::default());
        let rlz = RlzCompressor::new(pruned, PairCoding::UV);
        for w in bounds.windows(2).take(50) {
            let doc = &data[w[0]..w[1]];
            assert_eq!(rlz.decompress(&rlz.compress(doc)).unwrap(), doc);
        }
    }

    #[test]
    fn zero_passes_is_identity() {
        let (data, bounds) = collection_with_bounds();
        let base = Dictionary::sample(&data, 1024, 128, SampleStrategy::Evenly);
        let out = prune_and_refill(
            base.clone(),
            &data,
            &bounds,
            &PruneConfig {
                passes: 0,
                ..Default::default()
            },
        );
        assert_eq!(out.bytes(), base.bytes());
    }
}
