//! Dictionary construction for relative Lempel-Ziv compression (§3.3).
//!
//! The dictionary is a representative sample of the collection: evenly
//! spaced, fixed-length samples concatenated and indexed with a suffix
//! array. "Although simple, this technique generates a very effective
//! dictionary for typical Web data" — the evaluation in Tables 2–5 sweeps
//! dictionary sizes and sample lengths; [`SampleStrategy`] also implements
//! the prefix sampling used by the dynamic-update experiment (Table 10) and
//! random sampling as an ablation.

use rlz_suffix::{Matcher, PrefixIndex, SuffixArray};
use std::sync::Arc;

/// How sample positions are chosen across the collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleStrategy {
    /// Evenly spaced samples across the whole collection — the paper's
    /// method (§3.3): positions `0, n/(m/s), 2n/(m/s), …`.
    Evenly,
    /// Evenly spaced samples restricted to the first `percent` of the
    /// collection — models a dictionary built before the rest of a growing
    /// collection existed (§3.6, Table 10).
    Prefix {
        /// Fraction of the collection visible when sampling, in percent
        /// (1..=100).
        percent: u32,
    },
    /// Pseudo-random sample starts (deterministic given `seed`); an
    /// ablation of the evenly-spaced choice.
    Random {
        /// RNG seed so builds are reproducible.
        seed: u64,
    },
}

/// An RLZ dictionary: the sampled text, its suffix array, and a q-gram
/// [`PrefixIndex`] accelerating longest-match queries.
///
/// The prefix index is built once per dictionary and `Arc`-shared: clones
/// of a `Dictionary` (e.g. one per compressor or per store builder thread)
/// reuse the same table, so every factorization gets the fast path for
/// free. See [`Dictionary::reindex`] for the q knob.
#[derive(Debug, Clone)]
pub struct Dictionary {
    bytes: Vec<u8>,
    sa: SuffixArray,
    index: Arc<PrefixIndex>,
}

impl Dictionary {
    /// Default q-gram length for the prefix index: a 512 KiB table that
    /// skips the two widest `Refine` binary searches of every factor.
    pub const DEFAULT_INDEX_Q: usize = 2;

    /// Builds a dictionary directly from the given bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self::from_bytes_with_q(bytes, Self::DEFAULT_INDEX_Q)
    }

    /// Builds a dictionary with an explicit prefix-index q-gram length
    /// (`1..=rlz_suffix::MAX_Q`; table memory is `O(256^q)`).
    pub fn from_bytes_with_q(bytes: Vec<u8>, q: usize) -> Self {
        let sa = SuffixArray::build(&bytes);
        let index = Arc::new(PrefixIndex::build(&bytes, &sa, q));
        Dictionary { bytes, sa, index }
    }

    /// Samples a dictionary of (at most) `dict_size` bytes from `collection`
    /// using samples of `sample_len` bytes, per the chosen strategy.
    ///
    /// Mirrors §3.3: `m/s` samples of length `s` at evenly spaced positions.
    /// If the collection is smaller than the requested dictionary, the whole
    /// collection becomes the dictionary.
    pub fn sample(
        collection: &[u8],
        dict_size: usize,
        sample_len: usize,
        strategy: SampleStrategy,
    ) -> Self {
        Self::from_bytes(Self::sample_bytes(
            collection, dict_size, sample_len, strategy,
        ))
    }

    /// The raw sampled bytes of [`sample`](Self::sample), without building
    /// the derived suffix array / prefix index (used when several sampling
    /// passes are batched into one rebuild).
    fn sample_bytes(
        collection: &[u8],
        dict_size: usize,
        sample_len: usize,
        strategy: SampleStrategy,
    ) -> Vec<u8> {
        assert!(sample_len > 0, "sample length must be positive");
        let n = collection.len();
        if n <= dict_size || dict_size == 0 {
            return collection.to_vec();
        }
        let mut bytes = Vec::with_capacity(dict_size);
        for (start, end) in Self::sample_windows(n, dict_size, sample_len, strategy) {
            bytes.extend_from_slice(&collection[start..end]);
        }
        bytes.truncate(dict_size);
        bytes
    }

    /// The `[start, end)` sample windows over a collection of `n` bytes, in
    /// emission order — the single source of truth for sample placement,
    /// shared by [`sample_bytes`](Self::sample_bytes) and the streaming
    /// sampler so the two cannot drift. The loop stops once the accumulated
    /// window length reaches `dict_size` (the final window may overshoot;
    /// callers truncate the concatenation).
    fn sample_windows(
        n: usize,
        dict_size: usize,
        sample_len: usize,
        strategy: SampleStrategy,
    ) -> Vec<(usize, usize)> {
        let region_end = match strategy {
            SampleStrategy::Prefix { percent } => {
                assert!((1..=100).contains(&percent), "percent must be 1..=100");
                ((n as u64 * percent as u64) / 100).max(1) as usize
            }
            _ => n,
        };
        let num_samples = dict_size.div_ceil(sample_len).max(1);
        let mut windows = Vec::with_capacity(num_samples.min(1 << 20));
        let mut cum = 0usize;
        match strategy {
            SampleStrategy::Evenly | SampleStrategy::Prefix { .. } => {
                // Interval between sample starts; positions are spaced so the
                // final sample still fits in the region where possible.
                for k in 0..num_samples {
                    let start = if num_samples == 1 {
                        0
                    } else {
                        (region_end as u64 * k as u64 / num_samples as u64) as usize
                    };
                    let end = (start + sample_len).min(region_end);
                    windows.push((start, end));
                    cum += end - start;
                    if cum >= dict_size {
                        break;
                    }
                }
            }
            SampleStrategy::Random { seed } => {
                // splitmix64 of the seed, so nearby seeds diverge.
                let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                state = (state ^ (state >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                state = (state ^ (state >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                state = (state ^ (state >> 31)) | 1;
                for _ in 0..num_samples {
                    // xorshift64*: deterministic, dependency-free.
                    state ^= state >> 12;
                    state ^= state << 25;
                    state ^= state >> 27;
                    let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
                    let start = (r % region_end.saturating_sub(sample_len).max(1) as u64) as usize;
                    let end = (start + sample_len).min(region_end);
                    windows.push((start, end));
                    cum += end - start;
                    if cum >= dict_size {
                        break;
                    }
                }
            }
        }
        windows
    }

    /// Samples a dictionary from a collection streamed as chunks —
    /// byte-identical to [`sample`](Self::sample) over the concatenated
    /// chunks, without ever materializing the collection. The input to the
    /// bounded-memory build pipeline: peak memory is the dictionary plus
    /// one chunk.
    ///
    /// `total_len` must equal the summed chunk length (panics otherwise);
    /// when the source length is not known up front, one cheap counting
    /// pass over the generator supplies it.
    pub fn sample_streamed<I>(
        chunks: I,
        total_len: usize,
        dict_size: usize,
        sample_len: usize,
        strategy: SampleStrategy,
    ) -> Self
    where
        I: IntoIterator,
        I::Item: AsRef<[u8]>,
    {
        Self::from_bytes(Self::sample_bytes_streamed(
            chunks, total_len, dict_size, sample_len, strategy,
        ))
    }

    /// The raw sampled bytes of [`sample_streamed`](Self::sample_streamed).
    fn sample_bytes_streamed<I>(
        chunks: I,
        total_len: usize,
        dict_size: usize,
        sample_len: usize,
        strategy: SampleStrategy,
    ) -> Vec<u8>
    where
        I: IntoIterator,
        I::Item: AsRef<[u8]>,
    {
        assert!(sample_len > 0, "sample length must be positive");
        if total_len <= dict_size || dict_size == 0 {
            // Whole collection becomes the dictionary — same as the
            // materialized path.
            let mut bytes = Vec::with_capacity(total_len);
            for chunk in chunks {
                bytes.extend_from_slice(chunk.as_ref());
            }
            assert_eq!(
                bytes.len(),
                total_len,
                "chunk stream length disagrees with total_len"
            );
            return bytes;
        }
        let windows = Self::sample_windows(total_len, dict_size, sample_len, strategy);
        // Per-window buffers, filled positionally as chunks stream past:
        // windows may arrive out of start order (Random) or overlap after
        // rounding, so each keeps its own buffer and the concatenation at
        // the end follows emission order.
        let mut bufs: Vec<Vec<u8>> = windows.iter().map(|&(s, e)| vec![0u8; e - s]).collect();
        let mut order: Vec<usize> = (0..windows.len()).collect();
        order.sort_by_key(|&i| windows[i]);
        let mut next = 0usize; // first start-ordered window not fully filled
        let mut off = 0usize;
        for chunk in chunks {
            let chunk = chunk.as_ref();
            let chunk_end = off + chunk.len();
            for &w in &order[next..] {
                let (ws, we) = windows[w];
                if ws >= chunk_end {
                    break;
                }
                let (a, b) = (ws.max(off), we.min(chunk_end));
                if a < b {
                    bufs[w][a - ws..b - ws].copy_from_slice(&chunk[a - off..b - off]);
                }
            }
            while next < order.len() && windows[order[next]].1 <= chunk_end {
                next += 1;
            }
            off = chunk_end;
        }
        assert_eq!(
            off, total_len,
            "chunk stream length disagrees with total_len"
        );
        let mut bytes = Vec::with_capacity(dict_size + sample_len);
        for buf in &bufs {
            bytes.extend_from_slice(buf);
        }
        bytes.truncate(dict_size);
        bytes
    }

    /// Appends additional samples (e.g. from newly arrived documents) — the
    /// memory-unconstrained update path of §3.6. Existing factor encodings
    /// remain valid because dictionary offsets are unchanged.
    ///
    /// **Cost:** every call rebuilds the entire `O(m)` suffix array *and*
    /// the `O(m + σ^q)` prefix index from scratch — there is no incremental
    /// update. Growing a dictionary through repeated small appends is
    /// quadratic overall; batch them with
    /// [`append_samples_many`](Self::append_samples_many), which pays for
    /// one rebuild regardless of how many additions it absorbs.
    pub fn append_samples(&mut self, new_text: &[u8], extra_size: usize, sample_len: usize) {
        self.append_samples_many(&[(new_text, extra_size, sample_len)]);
    }

    /// Appends several `(new_text, extra_size, sample_len)` additions in
    /// one shot, rebuilding the suffix array and prefix index exactly once
    /// — the batched counterpart of [`append_samples`](Self::append_samples)
    /// for update streams that arrive in bursts.
    pub fn append_samples_many(&mut self, additions: &[(&[u8], usize, usize)]) {
        if additions.is_empty() {
            return;
        }
        for &(new_text, extra_size, sample_len) in additions {
            let extra =
                Self::sample_bytes(new_text, extra_size, sample_len, SampleStrategy::Evenly);
            self.bytes.extend_from_slice(&extra);
        }
        self.sa = SuffixArray::build(&self.bytes);
        self.index = Arc::new(PrefixIndex::build(&self.bytes, &self.sa, self.index.q()));
    }

    /// Rebuilds the prefix index with a different q-gram length
    /// (`1..=rlz_suffix::MAX_Q`). Larger q skips more `Refine` steps per
    /// factor but costs `O(256^q)` table entries; `q = 1` keeps only the
    /// 2 KiB first-byte table.
    pub fn reindex(&mut self, q: usize) {
        if self.index.q() != q {
            self.index = Arc::new(PrefixIndex::build(&self.bytes, &self.sa, q));
        }
    }

    /// The dictionary text.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Dictionary size in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the dictionary holds no bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The dictionary's suffix array.
    #[inline]
    pub fn suffix_array(&self) -> &SuffixArray {
        &self.sa
    }

    /// A longest-match view over the dictionary (un-indexed `Refine` from
    /// the full interval — the correctness oracle; factorization uses
    /// [`prefix_index`](Self::prefix_index) alongside it for the fast
    /// path).
    #[inline]
    pub fn matcher(&self) -> Matcher<'_> {
        Matcher::new(&self.bytes, &self.sa)
    }

    /// The q-gram prefix-interval index, shared by all clones of this
    /// dictionary.
    #[inline]
    pub fn prefix_index(&self) -> &PrefixIndex {
        &self.index
    }

    /// The q-gram length of the current prefix index.
    #[inline]
    pub fn index_q(&self) -> usize {
        self.index.q()
    }

    /// Resident heap bytes of the dictionary: the sampled text, its suffix
    /// array (4 bytes per text byte — the dominant term), and the shared
    /// prefix index. The build pipeline's RSS budget is
    /// `heap_bytes() + constant × block`.
    pub fn heap_bytes(&self) -> usize {
        self.bytes.capacity() + self.sa.heap_bytes() + self.index.heap_bytes()
    }

    // On-disk serialization is the raw dictionary text — use
    // [`bytes`](Self::bytes) directly (the suffix array and prefix index
    // are derived state, rebuilt on load; a former `to_bytes` method
    // cloned the whole dictionary just to say the same thing).
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection() -> Vec<u8> {
        (0..100_000u32)
            .flat_map(|i| format!("doc{:05} content words here. ", i).into_bytes())
            .collect()
    }

    #[test]
    fn evenly_spaced_sampling_hits_target_size() {
        let c = collection();
        let d = Dictionary::sample(&c, 10_000, 1000, SampleStrategy::Evenly);
        assert_eq!(d.len(), 10_000);
    }

    #[test]
    fn whole_collection_when_smaller_than_dict() {
        let c = b"tiny".to_vec();
        let d = Dictionary::sample(&c, 1000, 100, SampleStrategy::Evenly);
        assert_eq!(d.bytes(), b"tiny");
    }

    #[test]
    fn samples_span_the_collection() {
        // With even spacing, the last sample must come from the tail region.
        let mut c = vec![b'a'; 50_000];
        c.extend(vec![b'z'; 50_000]);
        let d = Dictionary::sample(&c, 5_000, 500, SampleStrategy::Evenly);
        assert!(d.bytes().contains(&b'a'));
        assert!(d.bytes().contains(&b'z'));
    }

    #[test]
    fn prefix_sampling_only_sees_prefix() {
        let mut c = vec![b'a'; 50_000];
        c.extend(vec![b'z'; 50_000]);
        let d = Dictionary::sample(&c, 5_000, 500, SampleStrategy::Prefix { percent: 50 });
        assert!(d.bytes().iter().all(|&b| b == b'a'));
    }

    #[test]
    fn random_sampling_is_deterministic() {
        let c = collection();
        let d1 = Dictionary::sample(&c, 4_000, 256, SampleStrategy::Random { seed: 42 });
        let d2 = Dictionary::sample(&c, 4_000, 256, SampleStrategy::Random { seed: 42 });
        assert_eq!(d1.bytes(), d2.bytes());
        let d3 = Dictionary::sample(&c, 4_000, 256, SampleStrategy::Random { seed: 43 });
        assert_ne!(d1.bytes(), d3.bytes());
    }

    #[test]
    fn append_samples_preserves_existing_offsets() {
        let c = collection();
        let mut d = Dictionary::sample(&c, 5_000, 500, SampleStrategy::Evenly);
        let before = d.bytes().to_vec();
        d.append_samples(b"entirely new content that keeps repeating itself", 64, 16);
        assert_eq!(&d.bytes()[..before.len()], &before[..]);
        assert!(d.len() > before.len());
    }

    #[test]
    fn append_samples_many_equals_sequential_appends() {
        let c = collection();
        let mut one_by_one = Dictionary::sample(&c, 4_000, 500, SampleStrategy::Evenly);
        let mut batched = one_by_one.clone();
        let extra_a = b"first burst of new material first burst".to_vec();
        let extra_b: Vec<u8> = (0..500u32)
            .flat_map(|i| format!("late doc {i} ").into_bytes())
            .collect();
        one_by_one.append_samples(&extra_a, 64, 16);
        one_by_one.append_samples(&extra_b, 128, 32);
        batched.append_samples_many(&[(&extra_a, 64, 16), (&extra_b, 128, 32)]);
        assert_eq!(one_by_one.bytes(), batched.bytes());
        assert_eq!(one_by_one.suffix_array(), batched.suffix_array());
        // Empty batch is a no-op, not a rebuild.
        let before = batched.bytes().to_vec();
        batched.append_samples_many(&[]);
        assert_eq!(batched.bytes(), &before[..]);
    }

    #[test]
    fn reindex_changes_q_and_preserves_matches() {
        let c = collection();
        let mut d = Dictionary::sample(&c, 3_000, 300, SampleStrategy::Evenly);
        assert_eq!(d.index_q(), Dictionary::DEFAULT_INDEX_Q);
        let (pos, len) = d
            .matcher()
            .longest_match_indexed(d.prefix_index(), b"content words");
        for q in [1usize, 3, 2] {
            d.reindex(q);
            assert_eq!(d.index_q(), q);
            assert_eq!(
                d.matcher()
                    .longest_match_indexed(d.prefix_index(), b"content words"),
                (pos, len),
                "q={q}"
            );
        }
    }

    #[test]
    fn clones_share_the_prefix_index() {
        let d = Dictionary::from_bytes(b"shared index".to_vec());
        let clone = d.clone();
        assert!(std::ptr::eq(d.prefix_index(), clone.prefix_index()));
    }

    #[test]
    fn suffix_array_matches_bytes() {
        let c = collection();
        let d = Dictionary::sample(&c, 2_000, 250, SampleStrategy::Evenly);
        assert_eq!(d.suffix_array().len(), d.len());
        // Spot-check the matcher works over the sampled text.
        let (pos, len) = d.matcher().longest_match(b"content words");
        assert!(len > 0);
        assert_eq!(
            &d.bytes()[pos as usize..pos as usize + len as usize],
            &b"content words"[..len as usize]
        );
    }

    #[test]
    #[should_panic]
    fn zero_sample_len_rejected() {
        let _ = Dictionary::sample(b"abc", 2, 0, SampleStrategy::Evenly);
    }

    #[test]
    fn streamed_sampling_matches_materialized() {
        let c = collection();
        let strategies = [
            SampleStrategy::Evenly,
            SampleStrategy::Prefix { percent: 37 },
            SampleStrategy::Random { seed: 7 },
        ];
        // Chunkings that split mid-sample, per-byte-ish, and collection-
        // larger-than-dict vs smaller-than-dict (whole-collection path).
        for &(dict_size, sample_len) in
            &[(10_000usize, 1000usize), (4_096, 100), (c.len() + 1, 512)]
        {
            for strategy in strategies {
                let oracle = Dictionary::sample(&c, dict_size, sample_len, strategy);
                for chunk_len in [1usize << 9, 333, c.len()] {
                    let streamed = Dictionary::sample_streamed(
                        c.chunks(chunk_len),
                        c.len(),
                        dict_size,
                        sample_len,
                        strategy,
                    );
                    assert_eq!(
                        streamed.bytes(),
                        oracle.bytes(),
                        "dict {dict_size} sample {sample_len} chunk {chunk_len} {strategy:?}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn streamed_sampling_rejects_wrong_total_len() {
        let c = collection();
        let _ = Dictionary::sample_streamed(
            c.chunks(1024),
            c.len() + 5,
            1000,
            100,
            SampleStrategy::Evenly,
        );
    }

    #[test]
    fn heap_bytes_accounts_for_all_components() {
        let c = collection();
        let d = Dictionary::sample(&c, 8_192, 512, SampleStrategy::Evenly);
        // At minimum: text + 4-byte-per-symbol suffix array + a non-empty
        // prefix index.
        assert!(d.heap_bytes() >= d.len() * 5);
        assert!(d.heap_bytes() >= d.prefix_index().heap_bytes());
    }
}
