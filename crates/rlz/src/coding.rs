//! Factor-stream coding (§3.4 of the paper).
//!
//! A document's factors are split into a *position* stream and a *length*
//! stream, each coded independently. The paper evaluates four combinations,
//! named by two letters (positions then lengths):
//!
//! * `U` — raw unsigned 32-bit integers,
//! * `V` — variable-byte code,
//! * `Z` — zlib applied per document to the raw 32-bit stream (here:
//!   `zlite` at best effort, matching the paper's "zlib with z best
//!   compression"),
//!
//! giving `ZZ`, `ZV`, `UZ`, `UV`. The future-work codecs Simple-9,
//! PForDelta and Elias γ/δ are also wired in (`S`, `P`, `G`, `D`) for the
//! ablation benchmarks, and two post-paper codecs extend the family where
//! modern entropy coding has moved since 2011:
//!
//! * `F` — FSE/tANS entropy coding of the stream's variable-byte image
//!   (`rlz_fse::tans`): Z-class ratio with a table-driven decode loop that
//!   replaces zlib's per-bit Huffman walk,
//! * `L` — LZ4-style fast-literal compression of the raw 32-bit image
//!   (`rlz_fse::lz4`): decode at memcpy-class speed, ratio between `U`
//!   and `Z`.
//!
//! Wire format per document:
//! `vbyte(n_factors) · vbyte(|pos|) · pos bytes · vbyte(|len|) · len bytes`.
//!
//! # The fused decode pipeline
//!
//! Retrieval speed is the paper's headline claim (Tables 5 and 8): a
//! document get is one map lookup, one positioned read, and a factor decode
//! against the resident dictionary. Two decode paths serve that claim:
//!
//! * **Two-step oracle** — [`decode_document`] materialises a
//!   `Vec<Factor>`, then [`crate::factor::expand`] copies each factor with
//!   per-factor bounds checks. Simple, allocating, kept as the correctness
//!   baseline and benchmark ablation.
//! * **Fused** — [`decode_and_expand_scratch`] decodes both integer
//!   streams into a caller-owned [`DecodeScratch`] (two `u32` buffers plus
//!   one inflate buffer for the `Z` coders), validates every factor extent
//!   against the dictionary in a single pre-pass that also sums the
//!   expanded length, reserves `out` once, and then runs a
//!   branch-minimized copy loop: factors of ≤ 16 bytes (the overwhelming
//!   majority per Figure 3) take a fixed-width 16-byte copy that the
//!   compiler lowers to two unconditional vector moves, longer factors a
//!   plain `memcpy`. A caller that reuses its scratch — the store layer
//!   keeps one per thread — performs **zero heap allocations** per
//!   steady-state document get.
//!
//! [`decode_and_expand`] wraps the fused path with a fresh scratch for
//! one-off callers. Both paths are byte-identical on every valid record
//! (asserted by tests and property tests), and both reject corrupt records
//! without panicking: header offsets are `checked_add`-guarded and factor
//! counts are validated against each stream's maximum possible density
//! before any value decoding happens.

use crate::factor::Factor;
use rlz_codecs::{elias, fixed, pfor, simple9, vbyte, CodecError, IntCodec};
use std::cell::RefCell;
use std::fmt;

/// Coder for a single integer stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coder {
    /// `U`: little-endian `u32` (the paper's unsigned 32-bit baseline).
    U32,
    /// `V`: variable-byte code.
    VByte,
    /// `Z`: general-purpose compression (zlite, best effort) of the raw
    /// 32-bit stream — captures higher-order per-document patterns.
    Zlib,
    /// `S`: Simple-9 word-aligned code (future work in the paper).
    Simple9,
    /// `P`: PForDelta (future work in the paper).
    PFor,
    /// `G`: Elias gamma.
    Gamma,
    /// `D`: Elias delta.
    Delta,
    /// `F`: FSE/tANS entropy coding of the variable-byte image.
    Fse,
    /// `L`: LZ4-style fast-literal compression of the raw 32-bit image.
    Lz4,
}

/// The single source of truth for coder letters: every parse, letter
/// lookup and error message derives from this table.
const CODERS: [(char, Coder); 9] = [
    ('U', Coder::U32),
    ('V', Coder::VByte),
    ('Z', Coder::Zlib),
    ('S', Coder::Simple9),
    ('P', Coder::PFor),
    ('G', Coder::Gamma),
    ('D', Coder::Delta),
    ('F', Coder::Fse),
    ('L', Coder::Lz4),
];

/// Error from parsing a coder letter or a two-letter pair-coding name.
///
/// The display form names the valid letters, so a CLI typo surfaces as an
/// actionable message instead of a silent `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseCodingError {
    /// The character does not name a coder.
    UnknownLetter(char),
    /// A pair-coding name must be exactly two letters; this was the actual
    /// character count.
    BadLength(usize),
}

impl fmt::Display for ParseCodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseCodingError::UnknownLetter(c) => {
                write!(f, "unknown coder letter {c:?}; valid letters are ")?;
                for (i, (letter, _)) in CODERS.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{letter}")?;
                }
                Ok(())
            }
            ParseCodingError::BadLength(n) => {
                write!(f, "pair coding names are two letters, got {n} character(s)")
            }
        }
    }
}

impl std::error::Error for ParseCodingError {}

impl Coder {
    /// Parses the single-letter name used in the paper's tables
    /// (case-insensitive).
    pub fn parse(letter: char) -> Result<Coder, ParseCodingError> {
        let up = letter.to_ascii_uppercase();
        CODERS
            .iter()
            .find(|&&(l, _)| l == up)
            .map(|&(_, coder)| coder)
            .ok_or(ParseCodingError::UnknownLetter(letter))
    }

    /// The single-letter name.
    pub fn letter(&self) -> char {
        CODERS
            .iter()
            .find(|&&(_, c)| c == *self)
            .expect("every coder is in the letter table")
            .0
    }

    /// Encodes a value stream, appending to `out`.
    pub fn encode_stream(&self, values: &[u32], out: &mut Vec<u8>) {
        match self {
            Coder::U32 => fixed::FixedU32.encode(values, out),
            Coder::VByte => vbyte::VByte.encode(values, out),
            Coder::Simple9 => simple9::Simple9.encode(values, out),
            Coder::PFor => pfor::PForDelta::default().encode(values, out),
            Coder::Gamma => elias::EliasGamma.encode(values, out),
            Coder::Delta => elias::EliasDelta.encode(values, out),
            Coder::Zlib => ENCODE_STAGE_SCRATCH.with(|cell| {
                // The raw u32 staging buffer is per-thread scratch: bulk
                // compression encodes millions of documents, and a fresh
                // `Vec` per document showed up as pure allocator traffic.
                let (raw, _) = &mut *cell.borrow_mut();
                raw.clear();
                fixed::FixedU32.encode(values, raw);
                let compressed = rlz_zlite::compress(raw, rlz_zlite::Level::Best);
                out.extend_from_slice(&compressed);
            }),
            Coder::Fse => ENCODE_STAGE_SCRATCH.with(|cell| {
                let (raw, comp) = &mut *cell.borrow_mut();
                raw.clear();
                vbyte::VByte.encode(values, raw);
                rlz_fse::tans::compress(raw, comp);
                out.extend_from_slice(comp);
            }),
            Coder::Lz4 => ENCODE_STAGE_SCRATCH.with(|cell| {
                let (raw, comp) = &mut *cell.borrow_mut();
                raw.clear();
                fixed::FixedU32.encode(values, raw);
                rlz_fse::lz4::compress(raw, comp);
                out.extend_from_slice(comp);
            }),
        }
    }

    /// Decodes exactly `n` values from `data`.
    pub fn decode_stream(&self, data: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        let mut out = Vec::new();
        let mut inflate = Vec::new();
        let mut fse = rlz_fse::FseScratch::default();
        self.decode_stream_into(data, n, &mut out, &mut inflate, &mut fse)?;
        Ok(out)
    }

    /// Decodes exactly `n` values from `data` into `out`, **replacing** its
    /// contents while reusing its capacity. `inflate` is the staging buffer
    /// the `Z`, `F` and `L` coders decompress into and `fse` holds the `F`
    /// coder's reusable state table (both reused the same way); the other
    /// coders leave them untouched. The zero-allocation entry point of the
    /// fused decode pipeline (see the module docs).
    pub fn decode_stream_into(
        &self,
        data: &[u8],
        n: usize,
        out: &mut Vec<u32>,
        inflate: &mut Vec<u8>,
        fse: &mut rlz_fse::FseScratch,
    ) -> Result<(), CodecError> {
        match self {
            Coder::U32 => fixed::FixedU32.decode_into(data, n, out).map(drop),
            Coder::VByte => vbyte::VByte.decode_into(data, n, out).map(drop),
            Coder::Simple9 => simple9::Simple9.decode_into(data, n, out).map(drop),
            Coder::PFor => pfor::PForDelta::default()
                .decode_into(data, n, out)
                .map(drop),
            Coder::Gamma => elias::EliasGamma.decode_into(data, n, out).map(drop),
            Coder::Delta => elias::EliasDelta.decode_into(data, n, out).map(drop),
            Coder::Zlib => {
                rlz_zlite::decompress_into(data, inflate)?;
                if Some(inflate.len()) != n.checked_mul(4) {
                    return Err(CodecError::Corrupt("Z stream count mismatch"));
                }
                fixed::FixedU32.decode_into(inflate, n, out).map(drop)
            }
            Coder::Fse => {
                rlz_fse::tans::decompress_into(data, inflate, fse)?;
                // The inflate buffer holds the vbyte image; requiring the
                // decode to consume it exactly pins the value count.
                let consumed = vbyte::VByte.decode_into(inflate, n, out)?;
                if consumed != inflate.len() {
                    return Err(CodecError::Corrupt("F stream count mismatch"));
                }
                Ok(())
            }
            Coder::Lz4 => {
                rlz_fse::lz4::decompress_into(data, inflate)?;
                if Some(inflate.len()) != n.checked_mul(4) {
                    return Err(CodecError::Corrupt("L stream count mismatch"));
                }
                fixed::FixedU32.decode_into(inflate, n, out).map(drop)
            }
        }
    }
}

thread_local! {
    /// Per-thread staging buffers for `encode_stream`'s compressing coders:
    /// the raw integer image of the stream being compressed, and the coded
    /// form before it is appended to the record.
    static ENCODE_STAGE_SCRATCH: RefCell<(Vec<u8>, Vec<u8>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// A position/length coder pair, e.g. `ZV` = zlib positions, vbyte lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairCoding {
    /// Coder for the position stream.
    pub pos: Coder,
    /// Coder for the length stream.
    pub len: Coder,
}

impl PairCoding {
    /// zlib positions, zlib lengths — best compression in the paper.
    pub const ZZ: PairCoding = PairCoding {
        pos: Coder::Zlib,
        len: Coder::Zlib,
    };
    /// zlib positions, vbyte lengths.
    pub const ZV: PairCoding = PairCoding {
        pos: Coder::Zlib,
        len: Coder::VByte,
    };
    /// raw u32 positions, zlib lengths.
    pub const UZ: PairCoding = PairCoding {
        pos: Coder::U32,
        len: Coder::Zlib,
    };
    /// raw u32 positions, vbyte lengths — fastest decoding in the paper.
    pub const UV: PairCoding = PairCoding {
        pos: Coder::U32,
        len: Coder::VByte,
    };

    /// FSE positions, FSE lengths — the modern-entropy answer to `ZZ`.
    pub const FF: PairCoding = PairCoding {
        pos: Coder::Fse,
        len: Coder::Fse,
    };
    /// FSE positions, vbyte lengths.
    pub const FV: PairCoding = PairCoding {
        pos: Coder::Fse,
        len: Coder::VByte,
    };
    /// LZ4 positions, LZ4 lengths — the fast-literal answer to `ZZ`.
    pub const LL: PairCoding = PairCoding {
        pos: Coder::Lz4,
        len: Coder::Lz4,
    };
    /// LZ4 positions, vbyte lengths.
    pub const LV: PairCoding = PairCoding {
        pos: Coder::Lz4,
        len: Coder::VByte,
    };

    /// The four combinations evaluated in Tables 4, 5 and 8.
    pub const PAPER_SET: [PairCoding; 4] = [Self::ZZ, Self::ZV, Self::UZ, Self::UV];

    /// The paper's set plus the post-paper F/L codecs — what the decode
    /// benchmark and the oracle-equality tests sweep.
    pub const EXTENDED_SET: [PairCoding; 8] = [
        Self::ZZ,
        Self::ZV,
        Self::UZ,
        Self::UV,
        Self::FF,
        Self::FV,
        Self::LL,
        Self::LV,
    ];

    /// Parses a two-letter name such as `"ZV"`.
    pub fn parse(name: &str) -> Result<PairCoding, ParseCodingError> {
        let mut chars = name.chars();
        match (chars.next(), chars.next(), chars.next()) {
            (Some(p), Some(l), None) => Ok(PairCoding {
                pos: Coder::parse(p)?,
                len: Coder::parse(l)?,
            }),
            _ => Err(ParseCodingError::BadLength(name.chars().count())),
        }
    }

    /// The two-letter name used in the paper's tables.
    pub fn name(&self) -> String {
        format!("{}{}", self.pos.letter(), self.len.letter())
    }
}

/// Encodes a factorized document.
pub fn encode_document(factors: &[Factor], coding: PairCoding) -> Vec<u8> {
    let mut out = Vec::new();
    encode_document_into(factors, coding, &mut EncodeScratch::new(), &mut out);
    out
}

/// Reusable buffers for the encode side, mirroring [`DecodeScratch`] on the
/// read side: the factor list of the document being compressed plus the
/// split position/length streams and their coded images. One scratch per
/// worker thread makes steady-state bulk compression allocation-free.
///
/// The scratch holds no document state between calls — any coding may share
/// one.
#[derive(Debug, Default)]
pub struct EncodeScratch {
    /// Factor buffer for [`crate::RlzCompressor::compress_with`]; cleared
    /// and refilled per document.
    pub(crate) factors: Vec<Factor>,
    positions: Vec<u32>,
    lengths: Vec<u32>,
    pos_bytes: Vec<u8>,
    len_bytes: Vec<u8>,
}

impl EncodeScratch {
    /// An empty scratch; buffers grow to the working-set size on first use.
    pub fn new() -> Self {
        EncodeScratch::default()
    }
}

/// Encodes a factorized document, appending to `out`. Byte-identical to
/// [`encode_document`]; the allocation-free entry point for bulk builders
/// that hold a per-thread [`EncodeScratch`].
pub fn encode_document_into(
    factors: &[Factor],
    coding: PairCoding,
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
) {
    scratch.positions.clear();
    scratch.positions.extend(factors.iter().map(|f| f.pos));
    scratch.lengths.clear();
    scratch.lengths.extend(factors.iter().map(|f| f.len));
    scratch.pos_bytes.clear();
    coding
        .pos
        .encode_stream(&scratch.positions, &mut scratch.pos_bytes);
    scratch.len_bytes.clear();
    coding
        .len
        .encode_stream(&scratch.lengths, &mut scratch.len_bytes);

    out.reserve(scratch.pos_bytes.len() + scratch.len_bytes.len() + 12);
    vbyte::write_u32(factors.len() as u32, out);
    vbyte::write_u32(scratch.pos_bytes.len() as u32, out);
    out.extend_from_slice(&scratch.pos_bytes);
    vbyte::write_u32(scratch.len_bytes.len() as u32, out);
    out.extend_from_slice(&scratch.len_bytes);
}

/// Decodes an encoded document back to factors.
pub fn decode_document(data: &[u8], coding: PairCoding) -> Result<Vec<Factor>, CodecError> {
    let (positions, lengths) = decode_streams(data, coding)?;
    Ok(positions
        .into_iter()
        .zip(lengths)
        .map(|(pos, len)| Factor { pos, len })
        .collect())
}

/// Upper bound on how many decoded values one encoded stream byte can
/// yield, across every [`Coder`]. The densest case is the `Z` coder: a
/// DEFLATE-class match token can cost as little as ~2 bits and emit up to
/// 258 raw bytes, so one compressed byte can expand to ~1032 raw bytes =
/// 258 u32 values; the bit-packed coders top out far lower (PForDelta
/// width-0 ≈ 64 values/byte at the default block size, γ/δ 8, Simple-9 7).
/// 1024 leaves headroom above all of them. Used to reject a corrupt factor
/// count before it drives any allocation or decoding.
const MAX_VALUES_PER_STREAM_BYTE: u64 = 1024;

impl Coder {
    /// Per-coder bound on decoded values per encoded stream byte, used by
    /// the record-header pre-pass. The `F` and `L` containers are exempt:
    /// an FSE symbol can cost a fraction of a bit (a constant stream codes
    /// in `~0` bits/value), so no useful static density bound exists —
    /// instead their decoders inflate with progressive reservation and the
    /// value count is validated against the container's own raw length.
    fn max_values_per_stream_byte(&self) -> u64 {
        match self {
            Coder::Fse | Coder::Lz4 => u64::MAX,
            _ => MAX_VALUES_PER_STREAM_BYTE,
        }
    }
}

/// Parses the record header, returning `(n_factors, pos bytes, len bytes)`.
///
/// Hardened against corrupt records: the `at + stream_len` offsets are
/// `checked_add`-guarded so huge declared lengths cannot wrap, both stream
/// extents must lie inside the record, and `n` is rejected when it exceeds
/// the maximum density the stream's coder can achieve on a stream of that
/// size.
fn split_streams(data: &[u8], coding: PairCoding) -> Result<(usize, &[u8], &[u8]), CodecError> {
    fn stream<'a>(
        data: &'a [u8],
        at: &mut usize,
        n: usize,
        coder: Coder,
    ) -> Result<&'a [u8], CodecError> {
        let stream_len = vbyte::read_u32(data, at)? as usize;
        if n as u64 > (stream_len as u64).saturating_mul(coder.max_values_per_stream_byte()) {
            return Err(CodecError::Corrupt("factor count exceeds stream capacity"));
        }
        let end = at
            .checked_add(stream_len)
            .filter(|&end| end <= data.len())
            .ok_or(CodecError::UnexpectedEof)?;
        let bytes = &data[*at..end];
        *at = end;
        Ok(bytes)
    }
    let mut at = 0usize;
    let n = vbyte::read_u32(data, &mut at)? as usize;
    let pos_bytes = stream(data, &mut at, n, coding.pos)?;
    let len_bytes = stream(data, &mut at, n, coding.len)?;
    Ok((n, pos_bytes, len_bytes))
}

/// Decodes the two value streams of an encoded document.
pub fn decode_streams(data: &[u8], coding: PairCoding) -> Result<(Vec<u32>, Vec<u32>), CodecError> {
    let (n, pos_bytes, len_bytes) = split_streams(data, coding)?;
    let positions = coding.pos.decode_stream(pos_bytes, n)?;
    let lengths = coding.len.decode_stream(len_bytes, n)?;
    Ok((positions, lengths))
}

/// Reusable buffers for the fused decode pipeline: the position and length
/// streams of the document being decoded, plus the inflate staging buffer
/// the `Z` coders decompress into.
///
/// One scratch per thread (the store layer keeps a thread-local) makes a
/// steady-state document get allocation-free: every buffer stays at the
/// high-water size of the documents that thread has served. The scratch
/// holds no document state between calls — any store/coding may share one.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    positions: Vec<u32>,
    lengths: Vec<u32>,
    inflate: Vec<u8>,
    fse: rlz_fse::FseScratch,
}

impl DecodeScratch {
    /// An empty scratch; buffers grow to the working-set size on first use.
    pub fn new() -> Self {
        DecodeScratch::default()
    }

    /// Decodes both value streams of `data` into this scratch, replacing
    /// previous contents, and returns `(positions, lengths)` views.
    pub fn decode_streams(
        &mut self,
        data: &[u8],
        coding: PairCoding,
    ) -> Result<(&[u32], &[u32]), CodecError> {
        let (n, pos_bytes, len_bytes) = split_streams(data, coding)?;
        coding.pos.decode_stream_into(
            pos_bytes,
            n,
            &mut self.positions,
            &mut self.inflate,
            &mut self.fse,
        )?;
        coding.len.decode_stream_into(
            len_bytes,
            n,
            &mut self.lengths,
            &mut self.inflate,
            &mut self.fse,
        )?;
        Ok((&self.positions, &self.lengths))
    }
}

/// Decodes an encoded document and expands it against the dictionary text in
/// one pass, appending the document bytes to `out`.
///
/// Convenience wrapper over [`decode_and_expand_scratch`] with a fresh
/// scratch; retrieval loops should hold a [`DecodeScratch`] and call the
/// scratch variant directly to stay allocation-free.
pub fn decode_and_expand(
    data: &[u8],
    coding: PairCoding,
    dict_bytes: &[u8],
    out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    decode_and_expand_scratch(data, coding, dict_bytes, out, &mut DecodeScratch::new())
}

/// Copy factors of up to this many bytes go through the fixed-width fast
/// path: copy a full window, then truncate to the real length. Figure 3 of
/// the paper puts the bulk of factor lengths well under this.
const SHORT_FACTOR_WINDOW: usize = 16;

/// The fused decode path: decodes both factor streams into `scratch`,
/// validates every factor against `dict_bytes` in one pre-pass, then
/// expands with a branch-minimized copy loop, appending to `out`. On any
/// error nothing is appended to `out`.
///
/// Byte-identical to [`decode_document`] + [`crate::factor::expand`] (the
/// two-step oracle) on every valid record; see the module docs for the
/// pipeline design.
pub fn decode_and_expand_scratch(
    data: &[u8],
    coding: PairCoding,
    dict_bytes: &[u8],
    out: &mut Vec<u8>,
    scratch: &mut DecodeScratch,
) -> Result<(), CodecError> {
    let (positions, lengths) = scratch.decode_streams(data, coding)?;
    let dict_len = dict_bytes.len() as u64;

    // Pre-pass: validate every factor extent and sum the expanded size, so
    // the copy loop below needs no per-factor error branch and `out` grows
    // at most once. Literals must be byte values; copies must lie inside
    // the dictionary.
    let mut expanded = 0u64;
    for (&pos, &len) in positions.iter().zip(lengths) {
        if len == 0 {
            if pos > u8::MAX as u32 {
                return Err(CodecError::Corrupt("literal is not a byte"));
            }
            expanded += 1;
        } else {
            if pos as u64 + len as u64 > dict_len {
                return Err(CodecError::Corrupt("factor exceeds dictionary"));
            }
            expanded += len as u64;
        }
    }
    let expanded =
        usize::try_from(expanded).map_err(|_| CodecError::Corrupt("document exceeds usize"))?;
    // The short-factor fast path overshoots by up to WINDOW-1 bytes before
    // truncating back; reserve for the overshoot so it never reallocates.
    out.reserve(expanded + SHORT_FACTOR_WINDOW);

    for (&pos, &len) in positions.iter().zip(lengths) {
        let (pos, len) = (pos as usize, len as usize);
        if len == 0 {
            out.push(pos as u8);
        } else if len <= SHORT_FACTOR_WINDOW && pos + SHORT_FACTOR_WINDOW <= dict_bytes.len() {
            // Fixed-width copy: unconditionally move a whole window (two
            // 8-byte loads/stores after vectorization), then cut back.
            let window: &[u8; SHORT_FACTOR_WINDOW] = dict_bytes[pos..pos + SHORT_FACTOR_WINDOW]
                .try_into()
                .expect("window bounds checked");
            out.extend_from_slice(window);
            out.truncate(out.len() - (SHORT_FACTOR_WINDOW - len));
        } else {
            out.extend_from_slice(&dict_bytes[pos..pos + len]);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_factors() -> Vec<Factor> {
        vec![
            Factor::copy(1000, 42),
            Factor::literal(b'q'),
            Factor::copy(0, 7),
            Factor::copy(999_999, 3),
            Factor::literal(0),
            Factor::copy(77, 258),
        ]
    }

    #[test]
    fn all_pair_codings_roundtrip() {
        let factors = sample_factors();
        for name in [
            "ZZ", "ZV", "UZ", "UV", "SS", "PP", "GV", "DV", "SV", "PV", "FF", "FV", "LL", "LV",
            "FZ", "LF",
        ] {
            let coding = PairCoding::parse(name).unwrap();
            assert_eq!(coding.name(), name.to_uppercase());
            let enc = encode_document(&factors, coding);
            let dec = decode_document(&enc, coding).unwrap();
            assert_eq!(dec, factors, "coding {name}");
        }
    }

    #[test]
    fn empty_document_roundtrips() {
        for coding in PairCoding::EXTENDED_SET {
            let enc = encode_document(&[], coding);
            assert!(decode_document(&enc, coding).unwrap().is_empty());
        }
    }

    #[test]
    fn parse_rejects_garbage_with_typed_errors() {
        assert_eq!(PairCoding::parse("Q"), Err(ParseCodingError::BadLength(1)));
        assert_eq!(
            PairCoding::parse("ZZZ"),
            Err(ParseCodingError::BadLength(3))
        );
        assert_eq!(PairCoding::parse(""), Err(ParseCodingError::BadLength(0)));
        assert_eq!(
            PairCoding::parse("XY"),
            Err(ParseCodingError::UnknownLetter('X'))
        );
        assert_eq!(
            PairCoding::parse("Ux"),
            Err(ParseCodingError::UnknownLetter('x'))
        );
        assert!(PairCoding::parse("zv").is_ok(), "case-insensitive");
        assert!(PairCoding::parse("fl").is_ok(), "case-insensitive");
        let msg = ParseCodingError::UnknownLetter('x').to_string();
        for (letter, _) in super::CODERS {
            assert!(msg.contains(letter), "error message names {letter}: {msg}");
        }
    }

    #[test]
    fn every_coder_letter_parses_back() {
        for (letter, coder) in super::CODERS {
            assert_eq!(Coder::parse(letter), Ok(coder));
            assert_eq!(coder.letter(), letter);
        }
    }

    #[test]
    fn decode_and_expand_matches_two_step() {
        let dict = b"the common dictionary text with patterns".to_vec();
        let factors = vec![
            Factor::copy(4, 6), // "common"
            Factor::literal(b'!'),
            Factor::copy(10, 11), // " dictionary"
        ];
        let mut scratch = DecodeScratch::new();
        for coding in PairCoding::EXTENDED_SET {
            let enc = encode_document(&factors, coding);
            let mut fast = Vec::new();
            decode_and_expand(&enc, coding, &dict, &mut fast).unwrap();
            let mut fused = b"prefix".to_vec();
            decode_and_expand_scratch(&enc, coding, &dict, &mut fused, &mut scratch).unwrap();
            let mut slow = Vec::new();
            crate::factor::expand(&dict, &decode_document(&enc, coding).unwrap(), &mut slow)
                .unwrap();
            assert_eq!(fast, slow);
            assert_eq!(fast, b"common! dictionary");
            assert_eq!(&fused[6..], slow.as_slice(), "fused path appends");
            assert_eq!(&fused[..6], b"prefix");
        }
    }

    #[test]
    fn fused_decode_matches_oracle_on_boundary_factors() {
        // Factors crossing the 16-byte fast-path window in every way: len
        // exactly at/over the window, copies ending at the dictionary's
        // last byte (where the fixed-width window would overrun), empty
        // docs, and all-literal docs.
        let dict: Vec<u8> = (0..200u32).map(|i| (i % 251) as u8).collect();
        let end = dict.len() as u32;
        let shapes: Vec<Vec<Factor>> = vec![
            vec![],
            vec![Factor::literal(0), Factor::literal(255)],
            (1..=33).map(|l| Factor::copy(end - l, l)).collect(),
            vec![
                Factor::copy(end - 1, 1), // final byte: window cannot fit
                Factor::copy(0, 16),
                Factor::copy(end - 16, 16),
                Factor::copy(end - 17, 17),
                Factor::literal(b'x'),
                Factor::copy(3, 15),
            ],
        ];
        let mut scratch = DecodeScratch::new();
        for name in [
            "ZZ", "ZV", "UZ", "UV", "SS", "PP", "GV", "DV", "FF", "FV", "LL", "LV",
        ] {
            let coding = PairCoding::parse(name).unwrap();
            for factors in &shapes {
                let enc = encode_document(factors, coding);
                let mut fused = Vec::new();
                decode_and_expand_scratch(&enc, coding, &dict, &mut fused, &mut scratch).unwrap();
                let mut oracle = Vec::new();
                crate::factor::expand(&dict, &decode_document(&enc, coding).unwrap(), &mut oracle)
                    .unwrap();
                assert_eq!(fused, oracle, "coding {name}");
            }
        }
    }

    #[test]
    fn fused_decode_errors_append_nothing() {
        let dict = b"tiny".to_vec();
        let bad = vec![
            vec![Factor::copy(0, 4), Factor::copy(2, 3)], // second exceeds dict
            vec![Factor { pos: 999, len: 0 }],            // literal above a byte
        ];
        let mut scratch = DecodeScratch::new();
        for factors in &bad {
            let enc = encode_document(factors, PairCoding::UV);
            let mut out = b"keep".to_vec();
            assert!(
                decode_and_expand_scratch(&enc, PairCoding::UV, &dict, &mut out, &mut scratch)
                    .is_err()
            );
            assert_eq!(out, b"keep", "pre-pass must reject before writing");
        }
    }

    #[test]
    fn corrupt_headers_are_rejected_not_wrapped() {
        // A declared stream length reaching past the record must error.
        let mut enc = Vec::new();
        vbyte::write_u32(1, &mut enc); // n = 1
        vbyte::write_u32(u32::MAX, &mut enc); // |pos| far beyond the record
        enc.extend_from_slice(&[0xAA; 8]);
        assert!(decode_streams(&enc, PairCoding::UV).is_err());

        // A factor count no coder could fit in the declared streams must be
        // rejected before any decoding or allocation happens.
        let mut enc = Vec::new();
        vbyte::write_u32(u32::MAX, &mut enc); // n = 4 billion factors
        vbyte::write_u32(2, &mut enc); // ...from a 2-byte position stream
        enc.extend_from_slice(&[0, 0]);
        vbyte::write_u32(0, &mut enc);
        for coding in PairCoding::PAPER_SET {
            assert!(matches!(
                decode_streams(&enc, coding),
                Err(CodecError::Corrupt("factor count exceeds stream capacity"))
            ));
        }
        // The F/L containers are exempt from the static density bound (an
        // FSE symbol can cost a fraction of a bit), but the same record
        // must still error: the container's own raw length pins the count.
        for coding in [PairCoding::FF, PairCoding::LL, PairCoding::FV] {
            assert!(decode_streams(&enc, coding).is_err(), "{}", coding.name());
        }
    }

    #[test]
    fn fse_coding_handles_streams_denser_than_the_static_bound() {
        // 200k identical positions cost ~0 bits each under F — far beyond
        // the 1024 values/byte bound the other coders are held to. The
        // pre-pass must not reject it, and the roundtrip must hold.
        let factors: Vec<Factor> = (0..200_000).map(|_| Factor::copy(7, 5)).collect();
        let enc = encode_document(&factors, PairCoding::FF);
        assert!(
            enc.len() < factors.len() / 64,
            "constant factors should code near zero bits ({} bytes)",
            enc.len()
        );
        let dec = decode_document(&enc, PairCoding::FF).unwrap();
        assert_eq!(dec, factors);
    }

    #[test]
    fn truncated_documents_error() {
        let factors = sample_factors();
        for coding in PairCoding::EXTENDED_SET {
            let enc = encode_document(&factors, coding);
            for cut in [0, 1, enc.len() / 2, enc.len() - 1] {
                assert!(
                    decode_document(&enc[..cut], coding).is_err(),
                    "coding {} cut {}",
                    coding.name(),
                    cut
                );
            }
        }
    }

    #[test]
    fn z_coding_compresses_repetitive_positions() {
        // Repeated intra-document factors: Z positions must beat U.
        let factors: Vec<Factor> = (0..500)
            .map(|i| Factor::copy([100u32, 2000, 30000][i % 3], 20))
            .collect();
        let z = encode_document(&factors, PairCoding::ZZ).len();
        let u = encode_document(&factors, PairCoding::UV).len();
        assert!(z < u / 3, "ZZ {} vs UV {}", z, u);
    }

    #[test]
    fn wrong_coding_fails_or_differs() {
        // Decoding with a mismatched pair coding must not silently return
        // the original factors.
        let factors = sample_factors();
        let enc = encode_document(&factors, PairCoding::UV);
        if let Ok(dec) = decode_document(&enc, PairCoding::ZV) {
            assert_ne!(dec, factors)
        }
    }
}
