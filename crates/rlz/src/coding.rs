//! Factor-stream coding (§3.4 of the paper).
//!
//! A document's factors are split into a *position* stream and a *length*
//! stream, each coded independently. The paper evaluates four combinations,
//! named by two letters (positions then lengths):
//!
//! * `U` — raw unsigned 32-bit integers,
//! * `V` — variable-byte code,
//! * `Z` — zlib applied per document to the raw 32-bit stream (here:
//!   `zlite` at best effort, matching the paper's "zlib with z best
//!   compression"),
//!
//! giving `ZZ`, `ZV`, `UZ`, `UV`. The future-work codecs Simple-9,
//! PForDelta and Elias γ/δ are also wired in (`S`, `P`, `G`, `D`) for the
//! ablation benchmarks.
//!
//! Wire format per document:
//! `vbyte(n_factors) · vbyte(|pos|) · pos bytes · vbyte(|len|) · len bytes`.

use crate::factor::Factor;
use rlz_codecs::{elias, fixed, pfor, simple9, vbyte, CodecError, IntCodec};

/// Coder for a single integer stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coder {
    /// `U`: little-endian `u32` (the paper's unsigned 32-bit baseline).
    U32,
    /// `V`: variable-byte code.
    VByte,
    /// `Z`: general-purpose compression (zlite, best effort) of the raw
    /// 32-bit stream — captures higher-order per-document patterns.
    Zlib,
    /// `S`: Simple-9 word-aligned code (future work in the paper).
    Simple9,
    /// `P`: PForDelta (future work in the paper).
    PFor,
    /// `G`: Elias gamma.
    Gamma,
    /// `D`: Elias delta.
    Delta,
}

impl Coder {
    /// Parses the single-letter name used in the paper's tables.
    pub fn parse(letter: char) -> Option<Coder> {
        Some(match letter.to_ascii_uppercase() {
            'U' => Coder::U32,
            'V' => Coder::VByte,
            'Z' => Coder::Zlib,
            'S' => Coder::Simple9,
            'P' => Coder::PFor,
            'G' => Coder::Gamma,
            'D' => Coder::Delta,
            _ => return None,
        })
    }

    /// The single-letter name.
    pub fn letter(&self) -> char {
        match self {
            Coder::U32 => 'U',
            Coder::VByte => 'V',
            Coder::Zlib => 'Z',
            Coder::Simple9 => 'S',
            Coder::PFor => 'P',
            Coder::Gamma => 'G',
            Coder::Delta => 'D',
        }
    }

    /// Encodes a value stream, appending to `out`.
    pub fn encode_stream(&self, values: &[u32], out: &mut Vec<u8>) {
        match self {
            Coder::U32 => fixed::FixedU32.encode(values, out),
            Coder::VByte => vbyte::VByte.encode(values, out),
            Coder::Simple9 => simple9::Simple9.encode(values, out),
            Coder::PFor => pfor::PForDelta::default().encode(values, out),
            Coder::Gamma => elias::EliasGamma.encode(values, out),
            Coder::Delta => elias::EliasDelta.encode(values, out),
            Coder::Zlib => {
                let mut raw = Vec::with_capacity(values.len() * 4);
                fixed::FixedU32.encode(values, &mut raw);
                let compressed = rlz_zlite::compress(&raw, rlz_zlite::Level::Best);
                out.extend_from_slice(&compressed);
            }
        }
    }

    /// Decodes exactly `n` values from `data`.
    pub fn decode_stream(&self, data: &[u8], n: usize) -> Result<Vec<u32>, CodecError> {
        match self {
            Coder::U32 => fixed::FixedU32.decode_to_vec(data, n),
            Coder::VByte => vbyte::VByte.decode_to_vec(data, n),
            Coder::Simple9 => simple9::Simple9.decode_to_vec(data, n),
            Coder::PFor => pfor::PForDelta::default().decode_to_vec(data, n),
            Coder::Gamma => elias::EliasGamma.decode_to_vec(data, n),
            Coder::Delta => elias::EliasDelta.decode_to_vec(data, n),
            Coder::Zlib => {
                let raw = rlz_zlite::decompress(data)?;
                if raw.len() != n * 4 {
                    return Err(CodecError::Corrupt("Z stream count mismatch"));
                }
                fixed::FixedU32.decode_to_vec(&raw, n)
            }
        }
    }
}

/// A position/length coder pair, e.g. `ZV` = zlib positions, vbyte lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairCoding {
    /// Coder for the position stream.
    pub pos: Coder,
    /// Coder for the length stream.
    pub len: Coder,
}

impl PairCoding {
    /// zlib positions, zlib lengths — best compression in the paper.
    pub const ZZ: PairCoding = PairCoding {
        pos: Coder::Zlib,
        len: Coder::Zlib,
    };
    /// zlib positions, vbyte lengths.
    pub const ZV: PairCoding = PairCoding {
        pos: Coder::Zlib,
        len: Coder::VByte,
    };
    /// raw u32 positions, zlib lengths.
    pub const UZ: PairCoding = PairCoding {
        pos: Coder::U32,
        len: Coder::Zlib,
    };
    /// raw u32 positions, vbyte lengths — fastest decoding in the paper.
    pub const UV: PairCoding = PairCoding {
        pos: Coder::U32,
        len: Coder::VByte,
    };

    /// The four combinations evaluated in Tables 4, 5 and 8.
    pub const PAPER_SET: [PairCoding; 4] = [Self::ZZ, Self::ZV, Self::UZ, Self::UV];

    /// Parses a two-letter name such as `"ZV"`.
    pub fn parse(name: &str) -> Option<PairCoding> {
        let mut chars = name.chars();
        let pos = Coder::parse(chars.next()?)?;
        let len = Coder::parse(chars.next()?)?;
        chars.next().is_none().then_some(PairCoding { pos, len })
    }

    /// The two-letter name used in the paper's tables.
    pub fn name(&self) -> String {
        format!("{}{}", self.pos.letter(), self.len.letter())
    }
}

/// Encodes a factorized document.
pub fn encode_document(factors: &[Factor], coding: PairCoding) -> Vec<u8> {
    let positions: Vec<u32> = factors.iter().map(|f| f.pos).collect();
    let lengths: Vec<u32> = factors.iter().map(|f| f.len).collect();
    let mut pos_bytes = Vec::new();
    coding.pos.encode_stream(&positions, &mut pos_bytes);
    let mut len_bytes = Vec::new();
    coding.len.encode_stream(&lengths, &mut len_bytes);

    let mut out = Vec::with_capacity(pos_bytes.len() + len_bytes.len() + 12);
    vbyte::write_u32(factors.len() as u32, &mut out);
    vbyte::write_u32(pos_bytes.len() as u32, &mut out);
    out.extend_from_slice(&pos_bytes);
    vbyte::write_u32(len_bytes.len() as u32, &mut out);
    out.extend_from_slice(&len_bytes);
    out
}

/// Decodes an encoded document back to factors.
pub fn decode_document(data: &[u8], coding: PairCoding) -> Result<Vec<Factor>, CodecError> {
    let (positions, lengths) = decode_streams(data, coding)?;
    Ok(positions
        .into_iter()
        .zip(lengths)
        .map(|(pos, len)| Factor { pos, len })
        .collect())
}

/// Decodes the two value streams of an encoded document.
pub fn decode_streams(data: &[u8], coding: PairCoding) -> Result<(Vec<u32>, Vec<u32>), CodecError> {
    let mut at = 0usize;
    let n = vbyte::read_u32(data, &mut at)? as usize;
    let pos_len = vbyte::read_u32(data, &mut at)? as usize;
    let pos_bytes = data
        .get(at..at + pos_len)
        .ok_or(CodecError::UnexpectedEof)?;
    let positions = coding.pos.decode_stream(pos_bytes, n)?;
    at += pos_len;
    let len_len = vbyte::read_u32(data, &mut at)? as usize;
    let len_bytes = data
        .get(at..at + len_len)
        .ok_or(CodecError::UnexpectedEof)?;
    let lengths = coding.len.decode_stream(len_bytes, n)?;
    Ok((positions, lengths))
}

/// Decodes an encoded document and expands it against the dictionary text in
/// one pass, appending the document bytes to `out`.
pub fn decode_and_expand(
    data: &[u8],
    coding: PairCoding,
    dict_bytes: &[u8],
    out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    let (positions, lengths) = decode_streams(data, coding)?;
    for (&pos, &len) in positions.iter().zip(&lengths) {
        if len == 0 {
            let b = u8::try_from(pos).map_err(|_| CodecError::Corrupt("literal is not a byte"))?;
            out.push(b);
        } else {
            let chunk = dict_bytes
                .get(pos as usize..pos as usize + len as usize)
                .ok_or(CodecError::Corrupt("factor exceeds dictionary"))?;
            out.extend_from_slice(chunk);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_factors() -> Vec<Factor> {
        vec![
            Factor::copy(1000, 42),
            Factor::literal(b'q'),
            Factor::copy(0, 7),
            Factor::copy(999_999, 3),
            Factor::literal(0),
            Factor::copy(77, 258),
        ]
    }

    #[test]
    fn all_pair_codings_roundtrip() {
        let factors = sample_factors();
        for name in ["ZZ", "ZV", "UZ", "UV", "SS", "PP", "GV", "DV", "SV", "PV"] {
            let coding = PairCoding::parse(name).unwrap();
            assert_eq!(coding.name(), name.to_uppercase());
            let enc = encode_document(&factors, coding);
            let dec = decode_document(&enc, coding).unwrap();
            assert_eq!(dec, factors, "coding {name}");
        }
    }

    #[test]
    fn empty_document_roundtrips() {
        for coding in PairCoding::PAPER_SET {
            let enc = encode_document(&[], coding);
            assert!(decode_document(&enc, coding).unwrap().is_empty());
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(PairCoding::parse("Q"), None);
        assert_eq!(PairCoding::parse("ZZZ"), None);
        assert_eq!(PairCoding::parse(""), None);
        assert_eq!(PairCoding::parse("XY"), None);
        assert!(PairCoding::parse("zv").is_some(), "case-insensitive");
    }

    #[test]
    fn decode_and_expand_matches_two_step() {
        let dict = b"the common dictionary text with patterns".to_vec();
        let factors = vec![
            Factor::copy(4, 6), // "common"
            Factor::literal(b'!'),
            Factor::copy(10, 11), // " dictionary"
        ];
        for coding in PairCoding::PAPER_SET {
            let enc = encode_document(&factors, coding);
            let mut fast = Vec::new();
            decode_and_expand(&enc, coding, &dict, &mut fast).unwrap();
            let mut slow = Vec::new();
            crate::factor::expand(&dict, &decode_document(&enc, coding).unwrap(), &mut slow)
                .unwrap();
            assert_eq!(fast, slow);
            assert_eq!(fast, b"common! dictionary");
        }
    }

    #[test]
    fn truncated_documents_error() {
        let factors = sample_factors();
        for coding in PairCoding::PAPER_SET {
            let enc = encode_document(&factors, coding);
            for cut in [0, 1, enc.len() / 2, enc.len() - 1] {
                assert!(
                    decode_document(&enc[..cut], coding).is_err(),
                    "coding {} cut {}",
                    coding.name(),
                    cut
                );
            }
        }
    }

    #[test]
    fn z_coding_compresses_repetitive_positions() {
        // Repeated intra-document factors: Z positions must beat U.
        let factors: Vec<Factor> = (0..500)
            .map(|i| Factor::copy([100u32, 2000, 30000][i % 3], 20))
            .collect();
        let z = encode_document(&factors, PairCoding::ZZ).len();
        let u = encode_document(&factors, PairCoding::UV).len();
        assert!(z < u / 3, "ZZ {} vs UV {}", z, u);
    }

    #[test]
    fn wrong_coding_fails_or_differs() {
        // Decoding with a mismatched pair coding must not silently return
        // the original factors.
        let factors = sample_factors();
        let enc = encode_document(&factors, PairCoding::UV);
        if let Ok(dec) = decode_document(&enc, PairCoding::ZV) {
            assert_ne!(dec, factors)
        }
    }
}
