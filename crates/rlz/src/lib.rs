//! Relative Lempel-Ziv factorization — the primary contribution of Hoobin,
//! Puglisi & Zobel, *"Relative Lempel-Ziv Factorization for Efficient
//! Storage and Retrieval of Web Collections"*, PVLDB 5(3), 2011.
//!
//! The scheme (`rlz` in the paper):
//!
//! 1. Sample the collection at evenly spaced intervals into a small static
//!    **dictionary** (0.1–0.5 % of the collection) — [`Dictionary`].
//! 2. Build the dictionary's suffix array and **factorize** every document
//!    relative to it into `(position, length)` pairs — [`factor`].
//! 3. **Code** each document's position and length streams independently
//!    (raw u32 / vbyte / zlib and friends) — [`coding`].
//! 4. Serve random access by keeping the dictionary in memory and expanding
//!    a document's factors with plain memcpys — [`RlzCompressor`].
//!
//! The decisive property over blocked zlib/lzma baselines: the sampled
//! dictionary captures **global** redundancy (site boilerplate, mirrored
//! pages) that no sliding window can see, while decoding touches only the
//! requested document.
//!
//! # Quick start
//!
//! ```
//! use rlz_core::{Dictionary, PairCoding, RlzCompressor, SampleStrategy};
//!
//! // A toy "collection" with heavy cross-document redundancy.
//! let collection: Vec<u8> = (0..100)
//!     .flat_map(|i| format!("<page><title>{i}</title><nav>home</nav></page>").into_bytes())
//!     .collect();
//!
//! // 1. Sample a dictionary (here 512 bytes from 64-byte samples).
//! let dict = Dictionary::sample(&collection, 512, 64, SampleStrategy::Evenly);
//!
//! // 2-3. Compress a document with the paper's fastest coding, UV.
//! let rlz = RlzCompressor::new(dict, PairCoding::UV);
//! let doc = b"<page><title>new</title><nav>home</nav></page>";
//! let encoded = rlz.compress(doc);
//!
//! // 4. Random access = decode just this document.
//! assert_eq!(rlz.decompress(&encoded).unwrap(), doc);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coding;
mod compressor;
mod dict;
pub mod factor;
pub mod prune;
pub mod stats;

pub use coding::{
    decode_and_expand_scratch, Coder, DecodeScratch, EncodeScratch, PairCoding, ParseCodingError,
};
pub use compressor::RlzCompressor;
pub use dict::{Dictionary, SampleStrategy};
pub use factor::{expand, factorize, factorize_plain, factorize_to_vec, DecodeError, Factor};
pub use prune::{prune_and_refill, PruneConfig};
pub use stats::FactorStats;

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end check of the full §3 worked example plus statistics.
    #[test]
    fn paper_section3_pipeline() {
        let dict = Dictionary::from_bytes(b"cabbaabba".to_vec());
        let rlz = RlzCompressor::new(dict, PairCoding::UV);
        let factors = rlz.factorize(b"bbaancabb");
        assert_eq!(
            factors,
            vec![
                Factor::copy(2, 4),
                Factor::literal(b'n'),
                Factor::copy(0, 4)
            ]
        );
        let mut stats = FactorStats::new(9);
        stats.record(&factors);
        assert_eq!(stats.copies, 2);
        assert_eq!(stats.literals, 1);
        assert!((stats.avg_factor_len() - 3.0).abs() < 1e-9);
        // Copy factors cover dictionary positions 0..6; the tail "bba"
        // (3 of 9 bytes) is never referenced.
        assert!((stats.unused_dict_percent() - 100.0 * 3.0 / 9.0).abs() < 1e-9);
    }
}
