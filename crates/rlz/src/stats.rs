//! Factorization statistics: average factor length, dictionary usage and
//! factor-length histograms — the measurements behind Tables 2–3 and
//! Figure 3 of the paper.

use crate::factor::Factor;

/// Streaming statistics over factorizations.
#[derive(Debug, Clone)]
pub struct FactorStats {
    /// Number of copy factors seen.
    pub copies: u64,
    /// Number of literal factors seen.
    pub literals: u64,
    /// Total bytes the factors expand to.
    pub expanded_bytes: u64,
    /// Per-byte usage marks over the dictionary.
    used: Vec<bool>,
    /// Histogram of factor length values (index = length, saturating).
    hist: Vec<u64>,
}

/// Lengths at or above this value share the final histogram bucket.
const HIST_CAP: usize = 1 << 20;

impl FactorStats {
    /// Creates a collector for a dictionary of `dict_len` bytes.
    pub fn new(dict_len: usize) -> Self {
        FactorStats {
            copies: 0,
            literals: 0,
            expanded_bytes: 0,
            used: vec![false; dict_len],
            hist: Vec::new(),
        }
    }

    /// Records one document's factors.
    pub fn record(&mut self, factors: &[Factor]) {
        for f in factors {
            if f.len == 0 {
                self.literals += 1;
                self.expanded_bytes += 1;
            } else {
                self.copies += 1;
                self.expanded_bytes += f.len as u64;
                let len = (f.len as usize).min(HIST_CAP);
                if self.hist.len() <= len {
                    self.hist.resize(len + 1, 0);
                }
                self.hist[len] += 1;
                let start = f.pos as usize;
                let end = (start + f.len as usize).min(self.used.len());
                for slot in &mut self.used[start..end] {
                    *slot = true;
                }
            }
        }
    }

    /// Total factors (copies + literals).
    pub fn total_factors(&self) -> u64 {
        self.copies + self.literals
    }

    /// Average factor length in bytes — the "Avg.Fact." column of
    /// Tables 2 and 3 (literals count as length-1 factors).
    pub fn avg_factor_len(&self) -> f64 {
        if self.total_factors() == 0 {
            return 0.0;
        }
        self.expanded_bytes as f64 / self.total_factors() as f64
    }

    /// Per-byte dictionary usage: `used()[i]` is true when some copy factor
    /// covered dictionary byte `i`. Drives the pruning pass of
    /// [`crate::prune`].
    pub fn used(&self) -> &[bool] {
        &self.used
    }

    /// Percentage of dictionary bytes never referenced by any factor — the
    /// "Unused (%)" column of Tables 2 and 3.
    pub fn unused_dict_percent(&self) -> f64 {
        if self.used.is_empty() {
            return 0.0;
        }
        let unused = self.used.iter().filter(|&&u| !u).count();
        unused as f64 * 100.0 / self.used.len() as f64
    }

    /// Frequency of each exact length value (`histogram()[l]` = number of
    /// copy factors of length `l`).
    pub fn histogram(&self) -> &[u64] {
        &self.hist
    }

    /// Log-binned histogram for Figure 3: `(bin_start, bin_end, count)`
    /// with bin boundaries at powers of two.
    pub fn log_binned_histogram(&self) -> Vec<(usize, usize, u64)> {
        let mut bins = Vec::new();
        let mut lo = 1usize;
        while lo < self.hist.len() {
            let hi = (lo * 2).min(self.hist.len());
            let count: u64 = self.hist[lo..hi].iter().sum();
            bins.push((lo, hi - 1, count));
            lo = hi;
        }
        bins
    }

    /// Fraction of copy factors with length below `limit` — used to verify
    /// the Figure 3 claim that "the bulk of length values remain small".
    pub fn fraction_below(&self, limit: usize) -> f64 {
        if self.copies == 0 {
            return 0.0;
        }
        let below: u64 = self.hist.iter().take(limit.min(self.hist.len())).sum();
        below as f64 / self.copies as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_average() {
        let mut s = FactorStats::new(100);
        s.record(&[
            Factor::copy(0, 10),
            Factor::literal(b'x'),
            Factor::copy(50, 30),
        ]);
        assert_eq!(s.copies, 2);
        assert_eq!(s.literals, 1);
        assert_eq!(s.expanded_bytes, 41);
        assert!((s.avg_factor_len() - 41.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn unused_percent_tracks_coverage() {
        let mut s = FactorStats::new(100);
        assert_eq!(s.unused_dict_percent(), 100.0);
        s.record(&[Factor::copy(0, 50)]);
        assert_eq!(s.unused_dict_percent(), 50.0);
        s.record(&[Factor::copy(25, 50)]); // overlaps, extends to 75
        assert_eq!(s.unused_dict_percent(), 25.0);
        s.record(&[Factor::copy(75, 25)]);
        assert_eq!(s.unused_dict_percent(), 0.0);
    }

    #[test]
    fn histogram_bins() {
        let mut s = FactorStats::new(10);
        for len in [1u32, 1, 2, 3, 4, 5, 8, 9, 100] {
            s.record(&[Factor::copy(0, len)]);
        }
        let h = s.histogram();
        assert_eq!(h[1], 2);
        assert_eq!(h[2], 1);
        assert_eq!(h[100], 1);
        let bins = s.log_binned_histogram();
        // Bin [1,1] has 2; [2,3] has 2; [4,7] has 2; [8,15] has 2.
        assert_eq!(bins[0], (1, 1, 2));
        assert_eq!(bins[1], (2, 3, 2));
        assert_eq!(bins[2], (4, 7, 2));
        assert_eq!(bins[3], (8, 15, 2));
    }

    #[test]
    fn fraction_below_limit() {
        let mut s = FactorStats::new(10);
        for len in 1..=10u32 {
            s.record(&[Factor::copy(0, len)]);
        }
        assert!((s.fraction_below(6) - 0.5).abs() < 1e-9);
        assert_eq!(s.fraction_below(1000), 1.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = FactorStats::new(0);
        assert_eq!(s.avg_factor_len(), 0.0);
        assert_eq!(s.unused_dict_percent(), 0.0);
        assert_eq!(s.fraction_below(10), 0.0);
        assert!(s.log_binned_histogram().is_empty());
    }
}
