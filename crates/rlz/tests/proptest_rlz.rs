//! Property tests for the RLZ core: factorization round-trips arbitrary
//! documents against arbitrary dictionaries, all codings agree, and parses
//! are greedy-maximal.

use proptest::prelude::*;
use rlz_core::{
    coding::{decode_document, encode_document},
    decode_and_expand_scratch, expand, factorize_to_vec, DecodeScratch, Dictionary, PairCoding,
    RlzCompressor, SampleStrategy,
};

proptest! {
    #[test]
    fn factorize_expand_roundtrip(
        dict_bytes in proptest::collection::vec(0u8..8, 0..300),
        doc in proptest::collection::vec(0u8..8, 0..400),
    ) {
        let dict = Dictionary::from_bytes(dict_bytes);
        let factors = factorize_to_vec(&dict, &doc);
        let mut out = Vec::new();
        expand(dict.bytes(), &factors, &mut out).unwrap();
        prop_assert_eq!(out, doc);
    }

    #[test]
    fn full_byte_alphabet_roundtrip(
        dict_bytes in proptest::collection::vec(any::<u8>(), 0..200),
        doc in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let dict = Dictionary::from_bytes(dict_bytes);
        for coding in PairCoding::PAPER_SET {
            let comp = RlzCompressor::new(dict.clone(), coding);
            let enc = comp.compress(&doc);
            prop_assert_eq!(comp.decompress(&enc).unwrap(), doc.clone());
        }
    }

    #[test]
    fn factors_are_greedy_maximal(
        dict_bytes in proptest::collection::vec(0u8..4, 1..150),
        doc in proptest::collection::vec(0u8..4, 1..200),
    ) {
        // Each copy factor must be the longest dictionary match at its
        // position (definition 1 in §3), verified by brute force.
        let dict = Dictionary::from_bytes(dict_bytes.clone());
        let factors = factorize_to_vec(&dict, &doc);
        let mut at = 0usize;
        for f in &factors {
            let brute = (0..dict_bytes.len())
                .map(|s| {
                    dict_bytes[s..]
                        .iter()
                        .zip(&doc[at..])
                        .take_while(|(a, b)| a == b)
                        .count()
                })
                .max()
                .unwrap_or(0);
            if f.len == 0 {
                prop_assert_eq!(brute, 0, "literal emitted where a match exists");
                at += 1;
            } else {
                prop_assert_eq!(f.len as usize, brute, "factor not maximal at {}", at);
                at += f.len as usize;
            }
        }
        prop_assert_eq!(at, doc.len());
    }

    #[test]
    fn encoded_documents_roundtrip_through_all_codings(
        positions in proptest::collection::vec(any::<u32>(), 0..200),
    ) {
        // Synthesize factor streams directly to stress the coding layer
        // with value distributions factorization would rarely produce.
        let factors: Vec<rlz_core::Factor> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                if i % 5 == 4 {
                    rlz_core::Factor::literal((p % 256) as u8)
                } else {
                    rlz_core::Factor { pos: p, len: (p % 300) + 1 }
                }
            })
            .collect();
        for name in ["ZZ", "ZV", "UZ", "UV", "SS", "PP", "GG", "DD", "SV", "PZ", "FF", "FV", "LL", "LV", "FZ", "LF"] {
            let coding = PairCoding::parse(name).unwrap();
            let enc = encode_document(&factors, coding);
            prop_assert_eq!(decode_document(&enc, coding).unwrap(), factors.clone(), "{}", name);
        }
    }

    #[test]
    fn sampled_dictionaries_always_roundtrip(
        seed_docs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..100), 1..20),
        dict_size in 1usize..500,
        sample_len in 1usize..64,
    ) {
        let collection: Vec<u8> = seed_docs.concat();
        let dict = Dictionary::sample(&collection, dict_size, sample_len, SampleStrategy::Evenly);
        let comp = RlzCompressor::new(dict, PairCoding::ZV);
        for doc in &seed_docs {
            let enc = comp.compress(doc);
            prop_assert_eq!(&comp.decompress(&enc).unwrap(), doc);
        }
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..400)) {
        let dict = Dictionary::from_bytes(b"some dictionary".to_vec());
        let mut scratch = DecodeScratch::new();
        let mut out = Vec::new();
        for coding in PairCoding::EXTENDED_SET {
            let comp = RlzCompressor::new(dict.clone(), coding);
            let _ = comp.decompress(&data);
            out.clear();
            let _ = decode_and_expand_scratch(&data, coding, dict.bytes(), &mut out, &mut scratch);
        }
    }

    #[test]
    fn fused_decode_matches_two_step_oracle(
        dict_bytes in proptest::collection::vec(any::<u8>(), 1..300),
        doc in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        // The fused zero-allocation pipeline must be byte-identical to the
        // two-step `decode_document` + `expand` oracle, with one reused
        // scratch carried across every coding and document.
        let dict = Dictionary::from_bytes(dict_bytes);
        let mut scratch = DecodeScratch::new();
        let mut fused = Vec::new();
        for coding in PairCoding::EXTENDED_SET {
            let comp = RlzCompressor::new(dict.clone(), coding);
            let enc = comp.compress(&doc);
            let mut oracle = Vec::new();
            expand(dict.bytes(), &decode_document(&enc, coding).unwrap(), &mut oracle).unwrap();
            fused.clear();
            decode_and_expand_scratch(&enc, coding, dict.bytes(), &mut fused, &mut scratch)
                .unwrap();
            prop_assert_eq!(&fused, &oracle, "{}", coding.name());
            prop_assert_eq!(&fused, &doc, "{}", coding.name());
        }
    }
}
