//! Web archive walkthrough: generate a synthetic crawl, build all four
//! store types of the paper's evaluation, and compare compression and
//! retrieval throughput under sequential and query-log access — a
//! miniature of §4/§5.
//!
//! Run with: `cargo run --release --example web_archive`

use rlz_repro::corpus::{access, generate_web, WebConfig};
use rlz_repro::rlz::{Dictionary, PairCoding, SampleStrategy};
use rlz_repro::store::{
    AsciiStore, BlockCodec, BlockedStore, DocStore, RlzStore, RlzStoreBuilder,
};
use std::time::Instant;

fn main() {
    let size = 16 * 1024 * 1024;
    println!("generating a {} MiB synthetic .gov crawl...", size >> 20);
    let crawl = generate_web(&WebConfig::gov2(size, 2026));
    let docs: Vec<&[u8]> = crawl.iter_docs().collect();
    println!("  {} documents, avg {} bytes", docs.len(), crawl.total_bytes() / docs.len());

    let root = std::env::temp_dir().join(format!("rlz-web-archive-{}", std::process::id()));
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    // --- build the four systems ---
    let t = Instant::now();
    AsciiStore::build(&root.join("ascii"), docs.iter().copied()).unwrap();
    println!("ascii store built in {:.1?}", t.elapsed());

    let t = Instant::now();
    BlockedStore::build(
        &root.join("zlib"),
        docs.iter().copied(),
        BlockCodec::Zlite(rlz_repro::zlite::Level::Default),
        100 * 1024,
        threads,
    )
    .unwrap();
    println!("blocked zlib-class store built in {:.1?}", t.elapsed());

    let t = Instant::now();
    BlockedStore::build(
        &root.join("lzma"),
        docs.iter().copied(),
        BlockCodec::Lzlite(rlz_repro::lzlite::Level::Default),
        100 * 1024,
        threads,
    )
    .unwrap();
    println!("blocked lzma-class store built in {:.1?}", t.elapsed());

    let t = Instant::now();
    let dict = Dictionary::sample(
        &crawl.data,
        crawl.data.len() / 100, // 1% dictionary
        1024,
        SampleStrategy::Evenly,
    );
    RlzStoreBuilder::new(dict, PairCoding::ZV)
        .threads(threads)
        .build(&root.join("rlz"), &docs)
        .unwrap();
    println!("rlz store built in {:.1?}", t.elapsed());

    // --- measure ---
    let sequential = access::sequential(docs.len(), 2 * docs.len());
    let querylog = access::query_log(docs.len(), 5_000, 20, 42);

    let report = |name: &str, store: &mut dyn DocStore, stored: u64| {
        let pct = stored as f64 * 100.0 / crawl.total_bytes() as f64;
        let mut buf = Vec::new();
        let t = Instant::now();
        for &id in &sequential {
            buf.clear();
            store.get_into(id as usize, &mut buf).unwrap();
        }
        let seq = sequential.len() as f64 / t.elapsed().as_secs_f64();
        let t = Instant::now();
        for &id in &querylog {
            buf.clear();
            store.get_into(id as usize, &mut buf).unwrap();
        }
        let qlog = querylog.len() as f64 / t.elapsed().as_secs_f64();
        println!("{name:<22} {pct:>7.2}% {seq:>12.0} docs/s seq {qlog:>12.0} docs/s query-log");
    };

    println!("\n{:<22} {:>8} {:>18} {:>22}", "system", "size", "sequential", "query log");
    let mut s = AsciiStore::open(&root.join("ascii")).unwrap();
    let stored = s.stored_bytes();
    report("ascii", &mut s, stored);
    let mut s = BlockedStore::open(&root.join("zlib")).unwrap();
    let stored = s.stored_bytes();
    report("zlib 100KB blocks", &mut s, stored);
    let mut s = BlockedStore::open(&root.join("lzma")).unwrap();
    let stored = s.stored_bytes();
    report("lzma 100KB blocks", &mut s, stored);
    let mut s = RlzStore::open(&root.join("rlz")).unwrap();
    let stored = s.total_stored_bytes();
    report("rlz 1% dict (ZV)", &mut s, stored);

    std::fs::remove_dir_all(&root).ok();
    println!("\nExpected shape (paper §5): rlz compresses best or near-best and");
    println!("serves documents orders of magnitude faster than blocked baselines.");
}
