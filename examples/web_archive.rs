//! Web archive walkthrough: generate a synthetic crawl, build all four
//! store types of the paper's evaluation, and compare compression and
//! retrieval throughput under sequential and query-log access — a
//! miniature of §4/§5.
//!
//! Run with: `cargo run --release --example web_archive`

use rlz_repro::corpus::{access, generate_web, WebConfig};
use rlz_repro::rlz::{Dictionary, PairCoding, SampleStrategy};
use rlz_repro::store::{AsciiStore, BlockCodec, BlockedStore, DocStore, RlzStore, RlzStoreBuilder};
use std::time::Instant;

fn main() {
    let size = 16 * 1024 * 1024;
    println!("generating a {} MiB synthetic .gov crawl...", size >> 20);
    let crawl = generate_web(&WebConfig::gov2(size, 2026));
    let docs: Vec<&[u8]> = crawl.iter_docs().collect();
    println!(
        "  {} documents, avg {} bytes",
        docs.len(),
        crawl.total_bytes() / docs.len()
    );

    let root = std::env::temp_dir().join(format!("rlz-web-archive-{}", std::process::id()));
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    // --- build the four systems ---
    let t = Instant::now();
    AsciiStore::build(&root.join("ascii"), docs.iter().copied()).unwrap();
    println!("ascii store built in {:.1?}", t.elapsed());

    let t = Instant::now();
    BlockedStore::build(
        &root.join("zlib"),
        docs.iter().copied(),
        BlockCodec::Zlite(rlz_repro::zlite::Level::Default),
        100 * 1024,
        threads,
    )
    .unwrap();
    println!("blocked zlib-class store built in {:.1?}", t.elapsed());

    let t = Instant::now();
    BlockedStore::build(
        &root.join("lzma"),
        docs.iter().copied(),
        BlockCodec::Lzlite(rlz_repro::lzlite::Level::Default),
        100 * 1024,
        threads,
    )
    .unwrap();
    println!("blocked lzma-class store built in {:.1?}", t.elapsed());

    let t = Instant::now();
    let dict = Dictionary::sample(
        &crawl.data,
        crawl.data.len() / 100, // 1% dictionary
        1024,
        SampleStrategy::Evenly,
    );
    RlzStoreBuilder::new(dict, PairCoding::ZV)
        .threads(threads)
        .build(&root.join("rlz"), &docs)
        .unwrap();
    println!("rlz store built in {:.1?}", t.elapsed());

    // --- measure ---
    let sequential = access::sequential(docs.len(), 2 * docs.len());
    let querylog = access::query_log(docs.len(), 5_000, 20, 42);

    let report = |name: &str, store: &dyn DocStore, stored: u64| {
        let pct = stored as f64 * 100.0 / crawl.total_bytes() as f64;
        let mut buf = Vec::new();
        let t = Instant::now();
        for &id in &sequential {
            buf.clear();
            store.get_into(id as usize, &mut buf).unwrap();
        }
        let seq = sequential.len() as f64 / t.elapsed().as_secs_f64();
        let t = Instant::now();
        for &id in &querylog {
            buf.clear();
            store.get_into(id as usize, &mut buf).unwrap();
        }
        let qlog = querylog.len() as f64 / t.elapsed().as_secs_f64();
        println!("{name:<22} {pct:>7.2}% {seq:>12.0} docs/s seq {qlog:>12.0} docs/s query-log");
    };

    println!(
        "\n{:<22} {:>8} {:>18} {:>22}",
        "system", "size", "sequential", "query log"
    );
    let s = AsciiStore::open(&root.join("ascii")).unwrap();
    report("ascii", &s, s.stored_bytes());
    let s = BlockedStore::open(&root.join("zlib")).unwrap();
    report("zlib 100KB blocks", &s, s.stored_bytes());
    let s = BlockedStore::open(&root.join("lzma")).unwrap();
    report("lzma 100KB blocks", &s, s.stored_bytes());
    let rlz = RlzStore::open(&root.join("rlz")).unwrap();
    report("rlz 1% dict (ZV)", &rlz, rlz.total_stored_bytes());

    // --- concurrent retrieval: one shared store, N reader threads ---
    // Every retrieval method takes `&self`, so the same opened store can be
    // hammered from any number of threads; get_batch does the fan-out.
    println!("\nconcurrent query-log retrieval over the shared rlz store:");
    for workers in [1usize, 2, 4, 8] {
        let t = Instant::now();
        let batch = rlz.get_batch(&querylog, workers).unwrap();
        let rate = batch.len() as f64 / t.elapsed().as_secs_f64();
        println!("  {workers} thread(s): {rate:>12.0} docs/s");
    }

    std::fs::remove_dir_all(&root).ok();
    println!("\nExpected shape (paper §5): rlz compresses best or near-best and");
    println!("serves documents orders of magnitude faster than blocked baselines,");
    println!("and rlz throughput grows with reader threads on one shared store.");
}
