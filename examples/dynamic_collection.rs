//! Dynamic updates (§3.6, Table 10): a dictionary sampled from an early
//! prefix of a growing collection keeps compressing new documents well,
//! and appending fresh samples recovers most of the residual loss without
//! invalidating existing encodings.
//!
//! Run with: `cargo run --release --example dynamic_collection`

use rlz_repro::corpus::{generate_web, WebConfig};
use rlz_repro::rlz::{Dictionary, PairCoding, RlzCompressor, SampleStrategy};

fn encoded_percent(rlz: &RlzCompressor, docs: &[&[u8]]) -> f64 {
    let raw: usize = docs.iter().map(|d| d.len()).sum();
    let enc: usize = docs.iter().map(|d| rlz.compress(d).len()).sum();
    (enc + rlz.dict().len()) as f64 * 100.0 / raw as f64
}

fn main() {
    let collection = generate_web(&WebConfig::wikipedia(6 * 1024 * 1024, 77));
    let docs: Vec<&[u8]> = collection.iter_docs().collect();
    let dict_size = collection.total_bytes() / 200;
    println!(
        "collection: {} docs / {} MiB; dictionary budget {} KiB\n",
        docs.len(),
        collection.total_bytes() >> 20,
        dict_size >> 10
    );

    // Dictionary from the full collection: the reference point.
    let full = Dictionary::sample(&collection.data, dict_size, 1024, SampleStrategy::Evenly);
    let rlz_full = RlzCompressor::new(full, PairCoding::ZZ);
    let full_pct = encoded_percent(&rlz_full, &docs);
    println!("dictionary from 100% of collection: {full_pct:.2}% encoding");

    // Dictionary sampled when only 30% of the collection existed.
    let prefix = Dictionary::sample(
        &collection.data,
        dict_size,
        1024,
        SampleStrategy::Prefix { percent: 30 },
    );
    let rlz_prefix = RlzCompressor::new(prefix.clone(), PairCoding::ZZ);
    let prefix_pct = encoded_percent(&rlz_prefix, &docs);
    println!("dictionary from  30% prefix:        {prefix_pct:.2}% encoding");

    // §3.6's no-re-encoding repair: append samples of the *new* region to
    // the dictionary. Old factor offsets stay valid; only the derived
    // suffix array and prefix index are rebuilt.
    let split = collection.total_bytes() * 30 / 100;
    let mut grown = prefix.clone();
    grown.append_samples(&collection.data[split..], dict_size / 2, 1024);
    let rlz_grown = RlzCompressor::new(grown, PairCoding::ZZ);
    let grown_pct = encoded_percent(&rlz_grown, &docs);
    println!("after appending new-region samples: {grown_pct:.2}% encoding");

    // When updates arrive in bursts, append_samples_many batches them into
    // a single suffix-array + prefix-index rebuild instead of one per
    // burst. Same resulting dictionary, a fraction of the rebuild cost.
    let mid = split + (collection.total_bytes() - split) / 2;
    let mut batched = prefix;
    batched.append_samples_many(&[
        (&collection.data[split..mid], dict_size / 4, 1024),
        (&collection.data[mid..], dict_size / 4, 1024),
    ]);
    let rlz_batched = RlzCompressor::new(batched, PairCoding::ZZ);
    println!(
        "two bursts batched in one rebuild:  {:.2}% encoding",
        encoded_percent(&rlz_batched, &docs)
    );

    println!(
        "\npaper's finding (Table 10): prefix dictionaries lose little — here \
         {:.2} points; appending samples recovers {:.2} points.",
        prefix_pct - full_pct,
        prefix_pct - grown_pct
    );
    assert!(
        prefix_pct < full_pct + 10.0,
        "prefix dictionary degraded too much"
    );
}
