//! Minimal network client for the `rlz-serve` wire protocol: build a tiny
//! RLZ store, serve it on a loopback socket, and drive every opcode —
//! STAT, GET, MGET, and a clean SHUTDOWN — through `rlz_serve::Client`.
//!
//! Run with: `cargo run --release --example serve_client`
//!
//! Against a store served by the standalone binary instead
//! (`cargo run --release -p rlz-serve -- --store DIR`), skip the in-process
//! setup and call `Client::connect("127.0.0.1:7641".parse().unwrap())`.

use rlz_repro::rlz::{Dictionary, PairCoding, SampleStrategy};
use rlz_repro::serve::{serve, Client, ServeConfig};
use rlz_repro::store::{DocStore, RlzStore, RlzStoreBuilder};
use std::net::TcpListener;
use std::sync::Arc;

fn main() {
    // A small collection sharing a site template, compressed into an RLZ
    // store on disk (the quickstart example walks through this part).
    let pages: Vec<Vec<u8>> = (0..200)
        .map(|i| {
            format!(
                "<html><head><title>Article {i}</title></head><body>\
                 <nav><a href=/home>home</a></nav><p>Article number {i} of the \
                 archive, served over the rlz-serve wire protocol.</p></body></html>"
            )
            .into_bytes()
        })
        .collect();
    let collection: Vec<u8> = pages.concat();
    let dict = Dictionary::sample(
        &collection,
        collection.len() / 50,
        1024,
        SampleStrategy::Evenly,
    );
    let dir = std::env::temp_dir().join(format!("rlz-serve-example-{}", std::process::id()));
    let slices: Vec<&[u8]> = pages.iter().map(|p| p.as_slice()).collect();
    RlzStoreBuilder::new(dict, PairCoding::ZV)
        .build(&dir, &slices)
        .expect("store builds");

    // Serve it: any DocStore family works; port 0 picks a free port.
    let store: Arc<dyn DocStore> = Arc::new(RlzStore::open(&dir).expect("store opens"));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let handle = serve(store, listener, ServeConfig::default()).expect("server starts");
    println!("serving on {}", handle.addr());

    // STAT: cheap store metadata.
    let mut client = Client::connect(handle.addr()).expect("client connects");
    let stats = client.stat().expect("STAT");
    println!(
        "STAT: {} docs, {} payload bytes, max record {} bytes",
        stats.num_docs, stats.payload_bytes, stats.max_record_len
    );

    // GET: one document, byte-identical to the original.
    let doc = client.get(123).expect("GET");
    assert_eq!(doc, pages[123]);
    println!("GET 123: {} bytes, verified", doc.len());

    // MGET: a batch in one frame, served through the seek-aware batch
    // path, results in request order.
    let ids: Vec<u32> = (0..200).step_by(13).collect();
    let docs = client.mget(&ids).expect("MGET");
    for (doc, &id) in docs.iter().zip(&ids) {
        assert_eq!(doc, &pages[id as usize]);
    }
    println!("MGET: {} docs in one frame, all verified", docs.len());

    // Errors come back as typed frames, not broken connections.
    let err = client.get(9_999).expect_err("out of range");
    println!("GET 9999: {err}");

    // SHUTDOWN: the server acknowledges, then every worker exits.
    client.shutdown_server().expect("SHUTDOWN acknowledged");
    handle.join();
    println!("server shut down cleanly");
    std::fs::remove_dir_all(&dir).ok();
}
