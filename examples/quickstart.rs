//! Quickstart: compress a document collection with RLZ and read documents
//! back at random — the paper's §3.1 pipeline in eighty lines, ending with
//! an on-disk store shared by concurrent readers.
//!
//! Run with: `cargo run --release --example quickstart`

use rlz_repro::rlz::{Dictionary, FactorStats, PairCoding, RlzCompressor, SampleStrategy};
use rlz_repro::store::{DocStore, RlzStore, RlzStoreBuilder};

fn main() {
    // A toy collection: 500 "web pages" sharing a site template. In a real
    // deployment this would stream from disk; the algorithm only ever needs
    // the sampled dictionary in memory.
    let pages: Vec<Vec<u8>> = (0..500)
        .map(|i| {
            format!(
                "<html><head><title>Product {i}</title></head><body>\
                 <nav><a href=/home>home</a><a href=/cart>cart</a></nav>\
                 <h1>Product {i}</h1><p>Our catalogue entry number {i} ships \
                 with free delivery and a two-year warranty.</p>\
                 <footer>ACME Corp, 1 Example Road</footer></body></html>"
            )
            .into_bytes()
        })
        .collect();
    let collection: Vec<u8> = pages.concat();
    println!(
        "collection: {} docs, {} bytes",
        pages.len(),
        collection.len()
    );

    // Step 1 (§3.3): sample an evenly spaced dictionary — here 2% of the
    // collection from 1 KB samples. The paper uses as little as 0.1%.
    let dict = Dictionary::sample(
        &collection,
        collection.len() / 50,
        1024,
        SampleStrategy::Evenly,
    );
    println!(
        "dictionary: {} bytes ({:.2}% of collection)",
        dict.len(),
        dict.len() as f64 * 100.0 / collection.len() as f64
    );

    // Step 2 (§3.2/§3.4): factorize and encode every document. ZV = zlib
    // positions + vbyte lengths, a good space/speed middle ground.
    let rlz = RlzCompressor::new(dict, PairCoding::ZV);
    let mut stats = FactorStats::new(rlz.dict().len());
    let encoded: Vec<Vec<u8>> = pages
        .iter()
        .map(|p| {
            let factors = rlz.factorize(p);
            stats.record(&factors);
            rlz.encode_factors(&factors)
        })
        .collect();
    let total_encoded: usize = encoded.iter().map(Vec::len).sum();
    println!(
        "encoded: {} bytes = {:.2}% of original (avg factor length {:.1})",
        total_encoded,
        (total_encoded + rlz.dict().len()) as f64 * 100.0 / collection.len() as f64,
        stats.avg_factor_len()
    );

    // Step 3 (§3.1): random access — decode one document, no neighbours.
    let doc_id = 321;
    let roundtrip = rlz.decompress(&encoded[doc_id]).expect("decodes cleanly");
    assert_eq!(roundtrip, pages[doc_id]);
    println!(
        "random access to doc {}: {} bytes decoded, content verified",
        doc_id,
        roundtrip.len()
    );

    // Step 4: the same pipeline as a persistent store. Retrieval takes
    // `&self`, so one opened store serves any number of reader threads;
    // get_batch fans a request list out over workers.
    let dir = std::env::temp_dir().join(format!("rlz-quickstart-{}", std::process::id()));
    let slices: Vec<&[u8]> = pages.iter().map(|p| p.as_slice()).collect();
    let dict = Dictionary::sample(
        &collection,
        collection.len() / 50,
        1024,
        SampleStrategy::Evenly,
    );
    RlzStoreBuilder::new(dict, PairCoding::ZV)
        .threads(4)
        .build(&dir, &slices)
        .expect("store builds");
    let store = RlzStore::open(&dir).expect("store opens");
    let wanted: Vec<u32> = (0..500).step_by(7).collect();
    let batch = store.get_batch(&wanted, 4).expect("batch retrieval");
    for (bytes, &id) in batch.iter().zip(&wanted) {
        assert_eq!(bytes, &pages[id as usize]);
    }
    println!(
        "store: {} docs on disk, {} fetched in one 4-thread batch, all verified",
        store.num_docs(),
        batch.len()
    );
    std::fs::remove_dir_all(&dir).ok();
}
