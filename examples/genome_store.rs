//! RLZ for genomics: compress resequenced individuals against a reference
//! genome dictionary — the workload RLZ was born from (Kuruppu, Puglisi &
//! Zobel, SPIRE 2010, reference [20] of the paper).
//!
//! Run with: `cargo run --release --example genome_store`

use rlz_repro::corpus::genome::{self, GenomeConfig};
use rlz_repro::rlz::{Dictionary, FactorStats, PairCoding, RlzCompressor};
use rlz_repro::store::{DocStore, RlzStore, RlzStoreBuilder};

fn main() {
    let cfg = GenomeConfig {
        individuals: 64,
        reference_len: 500_000,
        snp_rate: 0.001, // ~1 SNP per kilobase, human-ish
        indel_rate: 0.0001,
        seed: 1000,
    };
    println!(
        "simulating {} individuals of {} bases (SNP rate {}, indel rate {})",
        cfg.individuals, cfg.reference_len, cfg.snp_rate, cfg.indel_rate
    );
    let reference = genome::reference(&cfg);
    let collection = genome::generate(&cfg);

    // The dictionary is simply the reference sequence: every individual is
    // a light edit of it, so factorization produces a few long factors per
    // chromosome plus literals at variant sites.
    let rlz = RlzCompressor::new(Dictionary::from_bytes(reference), PairCoding::ZV);

    let mut stats = FactorStats::new(rlz.dict().len());
    let mut total_raw = 0usize;
    let mut total_enc = 0usize;
    for (i, seq) in collection.iter_docs().enumerate() {
        let factors = rlz.factorize(seq);
        stats.record(&factors);
        let enc = rlz.encode_factors(&factors);
        assert_eq!(rlz.decompress(&enc).unwrap(), seq, "individual {i}");
        total_raw += seq.len();
        total_enc += enc.len();
    }

    println!("raw collection:   {:>12} bytes", total_raw);
    println!("rlz encoded:      {:>12} bytes", total_enc);
    println!(
        "dictionary:       {:>12} bytes (the reference)",
        rlz.dict().len()
    );
    println!(
        "compression:      {:>11.3}% of raw ({:.0}x)",
        (total_enc + rlz.dict().len()) as f64 * 100.0 / total_raw as f64,
        total_raw as f64 / (total_enc + rlz.dict().len()) as f64
    );
    println!(
        "factors/individual: {:>9.0}  (avg length {:.0} bases)",
        stats.total_factors() as f64 / cfg.individuals as f64,
        stats.avg_factor_len()
    );
    println!(
        "dictionary usage:  {:>10.1}% of reference bases referenced",
        100.0 - stats.unused_dict_percent()
    );

    // Persist the cohort as an RLZ store and read every individual back
    // with a multi-threaded batch over one shared reader — the serving
    // setup for a population-scale archive.
    let dir = std::env::temp_dir().join(format!("rlz-genome-{}", std::process::id()));
    let individuals: Vec<&[u8]> = collection.iter_docs().collect();
    RlzStoreBuilder::new(
        Dictionary::from_bytes(genome::reference(&cfg)),
        PairCoding::ZV,
    )
    .threads(4)
    .build(&dir, &individuals)
    .expect("store builds");
    let store = RlzStore::open(&dir).expect("store opens");
    let ids: Vec<u32> = (0..store.num_docs() as u32).collect();
    let batch = store.get_batch(&ids, 4).expect("batch retrieval");
    assert!(batch
        .iter()
        .zip(&individuals)
        .all(|(got, want)| got == want));
    println!(
        "store round-trip: {} individuals re-read on 4 threads, byte-identical",
        batch.len()
    );
    std::fs::remove_dir_all(&dir).ok();
}
