//! Shared pieces of the crash-ingestion harness: deterministic document
//! content and store construction used by the `ingest_writer` binary,
//! the out-of-process `kill -9` recovery test, and the ingest bench.
//!
//! Everything here is a pure function of `(seed, doc id)` so a verifier
//! that only knows the seed can re-derive the exact bytes every acked
//! document must still hold after a crash — no side-channel state file
//! that could itself be torn by the kill.

use crate::rlz::{Dictionary, PairCoding, SampleStrategy};
use crate::store::{FsyncPolicy, LiveConfig, LiveStore, StoreError, MANIFEST_FILE};
use std::path::Path;

/// The document a writer with `seed` stores under doc id `id` —
/// boilerplate-heavy (so RLZ factorization bites) but salted per-id so
/// byte-identity checks cannot pass by accident.
pub fn doc_bytes(seed: u64, id: u32) -> Vec<u8> {
    // SplitMix64 over (seed, id) picks the per-doc salt and shape.
    let mut x = seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let salt = next();
    let mut doc = format!("<doc id={id} salt={salt:016x}>").into_bytes();
    for k in 0..(next() % 6 + 2) {
        doc.extend_from_slice(
            format!("<p>ingest harness boilerplate paragraph {k} repeats across docs</p>")
                .as_bytes(),
        );
    }
    doc.extend_from_slice(format!("<tail>{:016x}</tail></doc>", next()).as_bytes());
    doc
}

/// The dictionary every harness store shares, sampled from the seed-0
/// document stream — content-typical so factorization is realistic, yet
/// reproducible without shipping a dictionary file around.
pub fn harness_dict() -> Dictionary {
    let all: Vec<u8> = (0..256u32).flat_map(|id| doc_bytes(0, id)).collect();
    Dictionary::sample(&all, 8 << 10, 512, SampleStrategy::Evenly)
}

/// The live-store configuration the harness runs with: caller-chosen
/// fsync policy, small segments so a kill lands around seal boundaries
/// too, and WAL bounds high enough that the harness never sheds.
pub fn harness_config(fsync: FsyncPolicy, seal_bytes: u64) -> LiveConfig {
    LiveConfig {
        fsync,
        seal_bytes,
        wal_soft_bytes: 256 << 20,
        wal_max_bytes: 512 << 20,
    }
}

/// Opens the harness store at `dir`, creating it on first use — exactly
/// what a restarted writer does after a crash (the create/open split is
/// keyed off the MANIFEST, which is published atomically).
pub fn open_or_create(dir: &Path, config: LiveConfig) -> Result<LiveStore, StoreError> {
    if dir.join(MANIFEST_FILE).exists() {
        LiveStore::open(dir, config)
    } else {
        LiveStore::create(dir, harness_dict(), PairCoding::ZV, config)
    }
}
