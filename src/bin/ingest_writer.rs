//! The crash-harness writer: ingests deterministic documents into a live
//! store and prints one flushed `ACK <id>` line per acked write, so a
//! parent process that SIGKILLs it mid-run knows exactly which writes
//! the store acked — and can hold recovery to them.
//!
//! ```text
//! ingest_writer --dir DIR [--seed N] [--count N]
//!               [--fsync always|interval:<ms>|never] [--seal-bytes N]
//! ```
//!
//! Document `id` always holds `ingest::doc_bytes(seed, id)`, so the
//! verifier re-derives expected content from the seed alone. On a
//! restart the writer resumes at the recovered doc count (printed as a
//! flushed `BASE <n>` line before the first write).

use rlz_repro::ingest;
use rlz_repro::store::{DocStore, FsyncPolicy, WriteStore};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: ingest_writer --dir DIR [--seed N] [--count N]\n\
         \x20                    [--fsync always|interval:<ms>|never] [--seal-bytes N]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir: Option<PathBuf> = None;
    let mut seed = 0u64;
    let mut count = 1_000u32;
    let mut fsync = FsyncPolicy::Always;
    let mut seal_bytes = 64u64 << 10;
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--dir" => dir = Some(PathBuf::from(value(&mut i))),
            "--seed" => seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--count" => count = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--fsync" => fsync = FsyncPolicy::parse(&value(&mut i)).unwrap_or_else(|| usage()),
            "--seal-bytes" => seal_bytes = value(&mut i).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 1;
    }
    let Some(dir) = dir else { usage() };

    let store = match ingest::open_or_create(&dir, ingest::harness_config(fsync, seal_bytes)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ingest_writer: open {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let out = std::io::stdout();
    let mut out = out.lock();
    let base = store.num_docs() as u32;
    writeln!(out, "BASE {base}").and_then(|()| out.flush()).ok();
    for id in base..base.saturating_add(count) {
        let doc = ingest::doc_bytes(seed, id);
        match store.put(&doc) {
            Ok(got) if got == id => {
                // The ack line goes out only after the store acked the
                // write under its fsync policy; the flush keeps the
                // parent's view exact even when we die right after.
                if writeln!(out, "ACK {id}")
                    .and_then(|()| out.flush())
                    .is_err()
                {
                    return ExitCode::FAILURE;
                }
            }
            Ok(got) => {
                eprintln!("ingest_writer: store assigned id {got}, expected {id}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("ingest_writer: put doc {id}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
