//! Facade crate for the RLZ reproduction workspace.
//!
//! Re-exports every component crate so examples, integration tests and
//! downstream users can depend on a single package:
//!
//! * [`suffix`] — suffix arrays (SA-IS) and longest-match queries.
//! * [`codecs`] — integer/bit codecs for factor streams.
//! * [`zlite`] — DEFLATE-class general-purpose compressor (zlib stand-in).
//! * [`lzlite`] — LZMA-class compressor (large window + range coder).
//! * [`rlz`] — the paper's contribution: dictionary sampling, RLZ
//!   factorization, factor coding, document compression.
//! * [`store`] — document stores: raw, blocked-compressed, RLZ.
//! * [`serve`] — the network front end: `rlz-serve` binary, wire
//!   protocol, and a blocking client.
//! * [`corpus`] — synthetic web collections and access patterns.
//!
//! See the repository `README.md` for a guided tour and `DESIGN.md` for the
//! mapping from the paper's sections to modules.

pub mod ingest;

pub use rlz_codecs as codecs;
pub use rlz_core as rlz;
pub use rlz_corpus as corpus;
pub use rlz_lzlite as lzlite;
pub use rlz_serve as serve;
pub use rlz_store as store;
pub use rlz_suffix as suffix;
pub use rlz_zlite as zlite;
